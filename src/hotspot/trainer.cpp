#include "hotspot/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/run_report.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "hotspot/train_state.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace hsdl::hotspot {
namespace {

/// Fused finiteness-and-norm scan: the squared L2 norm over a tensor
/// group absorbs any NaN/Inf element (NaN propagates, Inf saturates),
/// so one pass yields both the clipping norm and the divergence signal.
double squared_norm(const std::vector<nn::Param*>& params,
                    bool gradients) {
  double sq = 0.0;
  for (const nn::Param* p : params) {
    const double l2 = gradients ? p->grad.l2_norm() : p->value.l2_norm();
    sq += l2 * l2;
  }
  return sq;
}

/// Fails fast when a resumed run's config differs from the one that
/// wrote the checkpoint in any field that affects the math (the
/// checkpoint location/cadence is deliberately excluded).
void check_resume_config(const MgdConfig& now, const MgdConfig& stored) {
  auto require = [](bool same, const char* field) {
    HSDL_CHECK_MSG(same, "resume config mismatch: '"
                             << field
                             << "' differs from the checkpointed run");
  };
  require(now.learning_rate == stored.learning_rate, "learning_rate");
  require(now.decay == stored.decay, "decay");
  require(now.decay_step == stored.decay_step, "decay_step");
  require(now.batch == stored.batch, "batch");
  require(now.max_iters == stored.max_iters, "max_iters");
  require(now.validate_every == stored.validate_every, "validate_every");
  require(now.patience == stored.patience, "patience");
  require(now.optimizer == stored.optimizer, "optimizer");
  require(now.epsilon == stored.epsilon, "epsilon");
  require(now.balanced_batches == stored.balanced_batches,
          "balanced_batches");
  require(now.max_grad_norm == stored.max_grad_norm, "max_grad_norm");
  require(now.max_recoveries == stored.max_recoveries, "max_recoveries");
  require(now.recovery_lr_decay == stored.recovery_lr_decay,
          "recovery_lr_decay");
}

}  // namespace

void validate_mgd_config(const MgdConfig& config) {
  HSDL_CHECK(config.learning_rate > 0.0);
  HSDL_CHECK(config.decay > 0.0 && config.decay <= 1.0);
  HSDL_CHECK(config.decay_step > 0 && config.batch > 0);
  HSDL_CHECK(config.max_iters > 0 && config.validate_every > 0);
  HSDL_CHECK_MSG(config.patience > 0,
                 "patience must be positive — zero would stop training at "
                 "the first non-improving validation unconditionally");
  HSDL_CHECK(config.epsilon >= 0.0 && config.epsilon < 0.5);
  HSDL_CHECK(config.checkpoint_every > 0);
  HSDL_CHECK(config.max_grad_norm >= 0.0);
  HSDL_CHECK(config.recovery_lr_decay > 0.0 &&
             config.recovery_lr_decay <= 1.0);
}

nn::Tensor biased_targets(const std::vector<std::size_t>& labels,
                          double epsilon) {
  HSDL_CHECK(epsilon >= 0.0 && epsilon < 0.5);
  nn::Tensor t({labels.size(), std::size_t{2}});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == kHotspotIndex) {
      t.at(i, 0) = 0.0f;
      t.at(i, 1) = 1.0f;
    } else {
      t.at(i, 0) = static_cast<float>(1.0 - epsilon);
      t.at(i, 1) = static_cast<float>(epsilon);
    }
  }
  return t;
}

Confusion evaluate(HotspotCnn& model, const nn::ClassificationDataset& data,
                   double shift, std::size_t batch) {
  HSDL_CHECK(batch > 0);
  Confusion c;
  if (data.empty()) return c;
  const double threshold = 0.5 - shift;
  const std::size_t batches = (data.size() + batch - 1) / batch;
  // Batches run in parallel, each writing a disjoint probability slice
  // (probabilities() is const and thread-safe); the confusion counts are
  // then accumulated serially in sample order, so the result matches the
  // serial walk for any thread count. The contiguous gather avoids the
  // per-batch index-vector rebuild the old loop paid for.
  std::vector<float> prob_hotspot(data.size());
  parallel_for(0, batches, 1, [&](std::size_t bb, std::size_t be) {
    for (std::size_t bi = bb; bi < be; ++bi) {
      const std::size_t start = bi * batch;
      const std::size_t end = std::min(start + batch, data.size());
      const nn::Tensor probs = model.probabilities(data.gather(start, end));
      for (std::size_t i = start; i < end; ++i)
        prob_hotspot[i] = probs.at(i - start, kHotspotIndex);
    }
  });
  for (std::size_t i = 0; i < data.size(); ++i)
    c.add(data.label(i) == kHotspotIndex,
          is_flagged(static_cast<double>(prob_hotspot[i]), threshold));
  return c;
}

MgdTrainer::MgdTrainer(const MgdConfig& config) : config_(config) {
  validate_mgd_config(config);
}

TrainResult MgdTrainer::train(HotspotCnn& model,
                              const nn::ClassificationDataset& train_set,
                              const nn::ClassificationDataset& val_set,
                              Rng& rng) {
  return run(model, train_set, val_set, rng, nullptr);
}

TrainResult MgdTrainer::resume(HotspotCnn& model,
                               const nn::ClassificationDataset& train_set,
                               const nn::ClassificationDataset& val_set,
                               Rng& rng) {
  HSDL_CHECK_MSG(!config_.checkpoint_path.empty(),
                 "resume requires checkpoint_path to be set");
  const TrainState state = load_train_state_file(config_.checkpoint_path);
  return run(model, train_set, val_set, rng, &state);
}

TrainResult MgdTrainer::run(HotspotCnn& model,
                            const nn::ClassificationDataset& train_set,
                            const nn::ClassificationDataset& val_set,
                            Rng& rng, const TrainState* restored) {
  HSDL_CHECK(!train_set.empty() && !val_set.empty());
  HSDL_TRACE_SPAN("mgd.train");
  TrainResult result;
  WallTimer timer;
  double elapsed_base = 0.0;

  // Telemetry sink: an externally installed stream wins (BiasedLearner
  // shares one across rounds); otherwise config_.telemetry_path opens a
  // per-run stream here. Emission is observation-only — it never touches
  // the RNG streams or float math, so telemetry cannot perturb numerics.
  telemetry::JsonlStream owned_stream(
      telemetry_ != nullptr ? std::string() : config_.telemetry_path);
  telemetry::JsonlStream* tele =
      telemetry_ != nullptr ? telemetry_ : &owned_stream;
  const bool tele_on = tele->enabled();

  nn::Sequential& net = model.net();
  const std::vector<nn::Param*> params = net.params();
  nn::SgdOptimizer sgd(config_.learning_rate);
  nn::AdamOptimizer adam(config_.learning_rate);
  const bool use_adam = config_.optimizer == OptimizerKind::kAdam;
  auto opt_step = [&] {
    use_adam ? adam.step(params) : sgd.step(params);
  };
  auto current_lr = [&] {
    return use_adam ? adam.learning_rate() : sgd.learning_rate();
  };
  auto set_lr = [&](double lr) {
    if (use_adam)
      adam.set_learning_rate(lr);
    else
      sgd.set_learning_rate(lr);
  };
  auto snapshot_opt = [&] {
    return use_adam ? adam.snapshot_state(params) : sgd.snapshot_state(params);
  };
  nn::SoftmaxCrossEntropy loss;

  // Balanced accuracy: with the paper's heavily imbalanced sets, overall
  // accuracy would score the trivial all-non-hotspot model at ~93 % and the
  // stop criterion would freeze there; the mean of per-class recalls keeps
  // hotspot recall in the convergence signal.
  auto val_score = [&]() {
    HSDL_TRACE_SPAN("mgd.validate");
    const Confusion c = evaluate(model, val_set);
    const double hs_recall = c.accuracy();
    const double nhs_total = static_cast<double>(c.fp + c.tn);
    const double nhs_recall =
        nhs_total > 0.0 ? static_cast<double>(c.tn) / nhs_total : 1.0;
    return 0.5 * (hs_recall + nhs_recall);
  };

  std::vector<nn::Tensor> best;
  double best_score = -1.0;
  std::size_t stale = 0;
  std::size_t recoveries = 0;
  std::size_t start_iter = 1;

  if (restored != nullptr) {
    check_resume_config(config_, restored->config);
    nn::restore_params(restored->params, params);
    HSDL_CHECK_MSG(restored->best_params.size() == params.size(),
                   "checkpoint best-snapshot has "
                       << restored->best_params.size()
                       << " tensors, model has " << params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      HSDL_CHECK_MSG(same_shape(restored->best_params[i], params[i]->value),
                     "checkpoint best-snapshot shape mismatch for param '"
                         << params[i]->name << "'");
    best = restored->best_params;
    best_score = restored->best_score;
    stale = restored->stale;
    recoveries = restored->recoveries;
    result.history = restored->history;
    elapsed_base = restored->elapsed_seconds;
    if (use_adam)
      adam.restore_state(params, restored->opt_slots,
                         restored->opt_step_count);
    else
      sgd.restore_state(params, restored->opt_slots);
    set_lr(restored->learning_rate);
    rng.set_state(restored->sampler_rng);
    model.rng().set_state(restored->model_rng);
    start_iter = static_cast<std::size_t>(restored->iter) + 1;
    result.iters_run = static_cast<std::size_t>(restored->iter);
    if (restored->finished) {
      // The checkpointed run had already converged: hand back its
      // result as-is (best weights restored into the model) instead of
      // training past the recorded stopping point.
      nn::restore_params(best, params);
      result.best_val_accuracy = best_score;
      result.seconds = elapsed_base;
      result.recoveries = recoveries;
      result.final_learning_rate = restored->learning_rate;
      HSDL_LOG(kInfo) << "resume: checkpoint at iter " << restored->iter
                      << " is already finished; returning its result";
      return result;
    }
    HSDL_LOG(kInfo) << "resume: continuing from iter " << restored->iter
                    << " (lr " << restored->learning_rate << ", "
                    << result.history.size() << " validation points)";
    if (tele_on) {
      json::Value rec = json::Value::object();
      rec.set("event", json::Value("resume"));
      rec.set("iter", json::Value(restored->iter));
      rec.set("lr", json::Value(restored->learning_rate));
      rec.set("recoveries", json::Value(recoveries));
      tele->emit(rec);
    }
  } else {
    best = nn::snapshot_params(params);
  }

  auto capture = [&](std::size_t iter, bool finished) {
    TrainState st;
    st.config = config_;
    st.iter = iter;
    st.finished = finished;
    st.learning_rate = current_lr();
    st.elapsed_seconds = elapsed_base + timer.seconds();
    st.recoveries = recoveries;
    st.best_score = best_score;
    st.stale = stale;
    st.history = result.history;
    st.params = nn::snapshot_params(params);
    st.best_params = best;
    st.opt_slots = snapshot_opt();
    st.opt_step_count = adam.step_count();
    st.sampler_rng = rng.state();
    st.model_rng = model.rng().state();
    st.extra = checkpoint_extra_;
    return st;
  };

  // Divergence-watchdog anchor: the most recent state known to be
  // numerically sound (initial weights, then refreshed at every
  // validation). Rollback restores params and optimizer moments from
  // here; the sampler RNG keeps advancing so the retry draws fresh
  // batches instead of replaying the one that diverged.
  std::vector<nn::Tensor> good_params = nn::snapshot_params(params);
  std::vector<nn::Tensor> good_slots = snapshot_opt();
  std::uint64_t good_t = adam.step_count();

  bool stopped = false;
  std::vector<std::size_t> batch_labels;
  for (std::size_t iter = start_iter;
       iter <= config_.max_iters && !stopped; ++iter) {
    // Algorithm 1 line 5: sample m training instances.
    const auto idx = config_.balanced_batches
                         ? train_set.sample_batch_balanced(config_.batch, rng)
                         : train_set.sample_batch(config_.batch, rng);
    const nn::Tensor x = train_set.gather(idx);
    // Sized to the actual draw: a short batch must not leak stale labels
    // from the previous iteration or mismatch the row count of x.
    batch_labels.resize(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
      batch_labels[i] = train_set.label(idx[i]);
    const nn::Tensor targets = biased_targets(batch_labels, config_.epsilon);

    // Lines 6-9: average gradient via one batched backprop.
    net.zero_grad();
    const nn::Tensor logits = net.forward(x, /*train=*/true);
    double batch_loss = loss.forward(logits, targets);
    net.backward(loss.backward());
    if (fault_hook_) fault_hook_(iter, batch_loss, params);

    // Divergence watchdog: one fused scan over the gradients (and the
    // loss) before the update, one over the params after it, so a
    // non-finite batch can never reach the stored weights.
    const double grad_sq = squared_norm(params, /*gradients=*/true);
    bool diverged = !std::isfinite(batch_loss) || !std::isfinite(grad_sq);
    if (!diverged) {
      if (config_.max_grad_norm > 0.0) {
        const double norm = std::sqrt(grad_sq);
        if (norm > config_.max_grad_norm) {
          const auto scale =
              static_cast<float>(config_.max_grad_norm / norm);
          for (nn::Param* p : params) p->grad.scale(scale);
        }
      }
      // Lines 10-14: weight update with step decay.
      opt_step();
      diverged = !std::isfinite(squared_norm(params, /*gradients=*/false));
    }

    if (diverged) {
      ++recoveries;
      nn::restore_params(good_params, params);
      if (use_adam)
        adam.restore_state(params, good_slots, good_t);
      else
        sgd.restore_state(params, good_slots);
      if (recoveries > config_.max_recoveries) {
        HSDL_LOG(kError) << "watchdog: divergence at iter " << iter
                         << " exceeded max_recoveries ("
                         << config_.max_recoveries
                         << "); weights restored to the last good state";
        HSDL_CHECK_MSG(false, "training diverged "
                                  << recoveries
                                  << " times (non-finite loss/gradients/"
                                     "params at iter "
                                  << iter
                                  << "); last good weights restored");
      }
      const double lr = current_lr() * config_.recovery_lr_decay;
      set_lr(lr);
      HSDL_LOG(kWarn) << "watchdog: non-finite loss/gradients/params at iter "
                      << iter << "; rolled back to last good state, lr -> "
                      << lr << " (recovery " << recoveries << "/"
                      << config_.max_recoveries << ")";
      if (metrics::enabled()) {
        static metrics::Counter& rec_c = metrics::counter("train.recoveries");
        rec_c.increment();
      }
      if (tele_on) {
        json::Value rec = json::Value::object();
        rec.set("event", json::Value("watchdog_recovery"));
        rec.set("iter", json::Value(iter));
        rec.set("lr", json::Value(lr));
        rec.set("recoveries", json::Value(recoveries));
        tele->emit(rec);
      }
    } else {
      if (iter % config_.decay_step == 0)
        set_lr(current_lr() * config_.decay);

      if (iter % config_.validate_every == 0 || iter == config_.max_iters) {
        const double score = val_score();
        TrainPoint point{iter, elapsed_base + timer.seconds(), batch_loss,
                         score};
        result.history.push_back(point);
        if (callback_) callback_(point);
        HSDL_LOG(kInfo) << "iter " << iter << ": train loss " << batch_loss
                        << ", val balanced accuracy " << score << ", lr "
                        << current_lr();

        if (metrics::enabled()) {
          static metrics::Counter& val_c = metrics::counter(
              "train.validations");
          static metrics::Gauge& lr_g = metrics::gauge("train.learning_rate");
          val_c.increment();
          lr_g.set(current_lr());
        }
        if (tele_on) {
          json::Value rec = json::Value::object();
          rec.set("event", json::Value("validation"));
          rec.set("iter", json::Value(iter));
          rec.set("val_accuracy", json::Value(score));
          rec.set("best_val_accuracy", json::Value(std::max(score,
                                                            best_score)));
          rec.set("seconds", json::Value(point.seconds));
          tele->emit(rec);
        }

        if (score > best_score) {
          best_score = score;
          best = nn::snapshot_params(params);
          stale = 0;
        } else if (++stale >= config_.patience) {
          stopped = true;
        }
        // The validated iterate is numerically sound: refresh the
        // watchdog anchor.
        good_params = nn::snapshot_params(params);
        good_slots = snapshot_opt();
        good_t = adam.step_count();
      }
    }

    if (metrics::enabled()) {
      static metrics::Counter& iter_c = metrics::counter("train.iterations");
      iter_c.increment();
    }
    if (tele_on) {
      json::Value rec = json::Value::object();
      rec.set("event", json::Value("iteration"));
      rec.set("iter", json::Value(iter));
      rec.set("loss", json::Value(batch_loss));  // null when non-finite
      rec.set("lr", json::Value(current_lr()));
      rec.set("grad_norm", json::Value(std::sqrt(grad_sq)));
      rec.set("recoveries", json::Value(recoveries));
      tele->emit(rec);
    }

    result.iters_run = iter;
    const bool finished = stopped || iter == config_.max_iters;
    if (!config_.checkpoint_path.empty() &&
        (iter % config_.checkpoint_every == 0 || finished))
      save_train_state_file(config_.checkpoint_path, capture(iter, finished));
    if (iteration_hook_) iteration_hook_(iter);
  }

  nn::restore_params(best, params);
  result.best_val_accuracy = best_score;
  result.seconds = elapsed_base + timer.seconds();
  result.recoveries = recoveries;
  result.final_learning_rate = current_lr();
  if (tele_on) {
    json::Value rec = json::Value::object();
    rec.set("event", json::Value("train_result"));
    rec.set("iters_run", json::Value(result.iters_run));
    rec.set("best_val_accuracy", json::Value(result.best_val_accuracy));
    rec.set("seconds", json::Value(result.seconds));
    rec.set("recoveries", json::Value(result.recoveries));
    rec.set("final_lr", json::Value(result.final_learning_rate));
    rec.set("epsilon", json::Value(config_.epsilon));
    tele->emit(rec);
  }
  return result;
}

}  // namespace hsdl::hotspot

// Evaluation metrics (paper Definitions 1-3).
//
//   Accuracy    = TP / (TP + FN)          — hotspot detection recall.
//   False alarm = FP                      — non-hotspots flagged hotspot.
//   ODST        = 10 s * (TP + FP) + model evaluation time
//                 (every detected hotspot must be litho-simulated; the
//                  10 s/clip constant comes from the paper's industry
//                  simulator reference [17]).
#pragma once

#include <cstddef>

namespace hsdl::hotspot {

/// Seconds of lithography simulation per detected hotspot (paper §5).
inline constexpr double kLithoSimSecondsPerClip = 10.0;

/// The decision predicate shared by Detector::predict, the chip
/// scanner, batched evaluation and the ROC sweep: a hotspot probability
/// p in [0, 1] is flagged when it exceeds the threshold. A threshold
/// <= 0 flags everything — including samples with p exactly 0 — so the
/// full-flag end of a boundary sweep (shift = +0.5 ⇒ threshold 0)
/// reaches the (1, 1) ROC corner instead of clipping it.
inline bool is_flagged(double probability, double threshold) {
  return threshold <= 0.0 || probability > threshold;
}

struct Confusion {
  std::size_t tp = 0;  ///< hotspot predicted hotspot
  std::size_t fn = 0;  ///< hotspot predicted non-hotspot
  std::size_t fp = 0;  ///< non-hotspot predicted hotspot (false alarm)
  std::size_t tn = 0;  ///< non-hotspot predicted non-hotspot

  void add(bool actual_hotspot, bool predicted_hotspot);

  std::size_t total() const { return tp + fn + fp + tn; }
  std::size_t hotspots() const { return tp + fn; }
  std::size_t detected() const { return tp + fp; }

  /// Paper Definition 1. Returns 1 when the set has no hotspots.
  double accuracy() const;
  /// Paper Definition 2.
  std::size_t false_alarms() const { return fp; }
  /// Paper Definition 3, given the classifier evaluation wall time.
  double odst_seconds(double eval_seconds) const;
};

}  // namespace hsdl::hotspot

#include "hotspot/biased.hpp"

#include <fstream>
#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/run_report.hpp"
#include "common/trace.hpp"
#include "hotspot/train_state.hpp"

namespace hsdl::hotspot {

BiasedLearner::BiasedLearner(const BiasedLearningConfig& config)
    : config_(config) {
  HSDL_CHECK(config.rounds >= 1);
  HSDL_CHECK(config.epsilon0 >= 0.0);
  HSDL_CHECK(config.delta >= 0.0);
  HSDL_CHECK_MSG(
      config.epsilon0 +
              config.delta * static_cast<double>(config.rounds - 1) <
          0.5,
      "bias schedule crosses the 0.5 decision line (Theorem 1 bound)");
  // Both round templates must be valid now, not `rounds` rounds into a
  // long run when the degenerate config is first instantiated.
  validate_mgd_config(config.initial);
  validate_mgd_config(config.finetune);
  HSDL_CHECK(config.checkpoint_every > 0);
}

MgdConfig BiasedLearner::round_config(std::size_t round,
                                      double epsilon) const {
  MgdConfig mgd = (round == 0) ? config_.initial : config_.finetune;
  mgd.epsilon = epsilon;  // Algorithm 2 line 3
  mgd.checkpoint_path = config_.checkpoint_path;
  mgd.checkpoint_every = config_.checkpoint_every;
  return mgd;
}

BiasedLearningResult BiasedLearner::train(
    HotspotCnn& model, const nn::ClassificationDataset& train_set,
    const nn::ClassificationDataset& val_set, Rng& rng) {
  return run(model, train_set, val_set, rng, /*first_round=*/0,
             config_.epsilon0, /*completed=*/{},
             /*resume_first_round=*/false);
}

BiasedLearningResult BiasedLearner::resume(
    HotspotCnn& model, const nn::ClassificationDataset& train_set,
    const nn::ClassificationDataset& val_set, Rng& rng) {
  HSDL_CHECK_MSG(!config_.checkpoint_path.empty(),
                 "resume requires checkpoint_path to be set");
  if (!std::ifstream(config_.checkpoint_path, std::ios::binary).good()) {
    HSDL_LOG(kInfo) << "resume: no checkpoint at '"
                    << config_.checkpoint_path << "', starting fresh";
    return train(model, train_set, val_set, rng);
  }
  const TrainState state = load_train_state_file(config_.checkpoint_path);
  HSDL_CHECK_MSG(!state.extra.empty(),
                 "checkpoint '" << config_.checkpoint_path
                                << "' carries no biased-learning progress "
                                   "(written by a plain MgdTrainer?)");
  BiasedProgress progress = deserialize_biased_progress(state.extra);
  HSDL_CHECK_MSG(progress.round < config_.rounds,
                 "checkpoint is at round " << progress.round
                                           << " but config has only "
                                           << config_.rounds << " rounds");
  HSDL_CHECK_MSG(progress.completed.size() == progress.round,
                 "checkpoint round progress is inconsistent");
  HSDL_LOG(kInfo) << "resume: continuing biased learning at round "
                  << progress.round << " (eps=" << progress.epsilon << ", "
                  << progress.completed.size() << " rounds completed)";
  return run(model, train_set, val_set, rng, progress.round,
             progress.epsilon, std::move(progress.completed),
             /*resume_first_round=*/true);
}

BiasedLearningResult BiasedLearner::run(
    HotspotCnn& model, const nn::ClassificationDataset& train_set,
    const nn::ClassificationDataset& val_set, Rng& rng,
    std::size_t first_round, double first_epsilon,
    std::vector<BiasedRound> completed, bool resume_first_round) {
  HSDL_TRACE_SPAN("biased.train");
  BiasedLearningResult result;
  result.rounds = std::move(completed);
  // One stream serves the whole Algorithm 2 chain: each round's trainer
  // shares it, so per-iteration and per-round records interleave in
  // chronological order in a single file.
  telemetry::JsonlStream tele(config_.telemetry_path);
  double epsilon = first_epsilon;
  for (std::size_t i = first_round; i < config_.rounds; ++i) {
    MgdTrainer trainer(round_config(i, epsilon));
    if (tele.enabled()) trainer.set_telemetry(&tele);
    if (iteration_hook_) trainer.set_iteration_hook(iteration_hook_);
    if (fault_hook_) trainer.set_fault_hook(fault_hook_);
    if (!config_.checkpoint_path.empty())
      trainer.set_checkpoint_extra(serialize_biased_progress(
          BiasedProgress{i, epsilon, result.rounds}));
    BiasedRound round;
    round.epsilon = epsilon;
    round.train = (resume_first_round && i == first_round)
                      ? trainer.resume(model, train_set, val_set, rng)
                      : trainer.train(model, train_set, val_set, rng);
    round.val_confusion = evaluate(model, val_set);
    HSDL_LOG(kInfo) << "biased round " << i << " (eps=" << epsilon
                    << "): val hotspot accuracy "
                    << round.val_confusion.accuracy() << ", false alarms "
                    << round.val_confusion.false_alarms();
    if (metrics::enabled()) {
      static metrics::Counter& rounds_c = metrics::counter("biased.rounds");
      static metrics::Gauge& eps_g = metrics::gauge("biased.epsilon");
      rounds_c.increment();
      eps_g.set(epsilon);
    }
    if (tele.enabled()) {
      json::Value rec = json::Value::object();
      rec.set("event", json::Value("bias_round"));
      rec.set("round", json::Value(i));
      rec.set("epsilon", json::Value(epsilon));
      rec.set("hotspot_accuracy", json::Value(round.val_confusion.accuracy()));
      rec.set("false_alarms", json::Value(round.val_confusion.false_alarms()));
      rec.set("iters_run", json::Value(round.train.iters_run));
      rec.set("recoveries", json::Value(round.train.recoveries));
      tele.emit(rec);
    }
    result.rounds.push_back(std::move(round));
    epsilon += config_.delta;  // Algorithm 2 line 5
  }
  return result;
}

}  // namespace hsdl::hotspot

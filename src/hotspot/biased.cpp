#include "hotspot/biased.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace hsdl::hotspot {

BiasedLearner::BiasedLearner(const BiasedLearningConfig& config)
    : config_(config) {
  HSDL_CHECK(config.rounds >= 1);
  HSDL_CHECK(config.delta >= 0.0);
  HSDL_CHECK_MSG(
      config.epsilon0 +
              config.delta * static_cast<double>(config.rounds - 1) <
          0.5,
      "bias schedule crosses the 0.5 decision line (Theorem 1 bound)");
}

BiasedLearningResult BiasedLearner::train(
    HotspotCnn& model, const nn::ClassificationDataset& train_set,
    const nn::ClassificationDataset& val_set, Rng& rng) {
  BiasedLearningResult result;
  double epsilon = config_.epsilon0;
  for (std::size_t i = 0; i < config_.rounds; ++i) {
    MgdConfig mgd = (i == 0) ? config_.initial : config_.finetune;
    mgd.epsilon = epsilon;  // Algorithm 2 line 3
    MgdTrainer trainer(mgd);
    BiasedRound round;
    round.epsilon = epsilon;
    round.train = trainer.train(model, train_set, val_set, rng);
    round.val_confusion = evaluate(model, val_set);
    HSDL_LOG(kInfo) << "biased round " << i << " (eps=" << epsilon
                    << "): val hotspot accuracy "
                    << round.val_confusion.accuracy() << ", false alarms "
                    << round.val_confusion.false_alarms();
    result.rounds.push_back(std::move(round));
    epsilon += config_.delta;  // Algorithm 2 line 5
  }
  return result;
}

}  // namespace hsdl::hotspot

#include "analysis/pattern_cluster.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace hsdl::analysis {

PatternClusterResult cluster_patterns(
    const std::vector<layout::Clip>& clips,
    const PatternClusterConfig& config) {
  HSDL_CHECK_MSG(!clips.empty(), "no clips to cluster");
  fte::FeatureTensorExtractor extractor(config.feature);

  const std::size_t dim = config.feature.coeffs *
                          config.feature.blocks_per_side *
                          config.feature.blocks_per_side;
  std::vector<float> features;
  features.reserve(clips.size() * dim);
  for (const layout::Clip& clip : clips) {
    fte::FeatureTensor ft = extractor.extract(clip);
    features.insert(features.end(), ft.data.begin(), ft.data.end());
  }

  const KmeansResult km =
      kmeans(features.data(), clips.size(), dim, config.kmeans);

  PatternClusterResult result;
  result.assignment = km.assignment;
  result.clusters.resize(km.centroids.size());
  std::vector<double> best_medoid_d(
      km.centroids.size(), std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    const std::size_t c = km.assignment[i];
    PatternCluster& cluster = result.clusters[c];
    const double d = squared_distance(features.data() + i * dim,
                                      km.centroids[c].data(), dim);
    ++cluster.size;
    cluster.mean_distance += std::sqrt(d);
    if (d < best_medoid_d[c]) {
      best_medoid_d[c] = d;
      cluster.medoid = i;
    }
  }
  for (PatternCluster& cluster : result.clusters)
    if (cluster.size > 0)
      cluster.mean_distance /= static_cast<double>(cluster.size);
  return result;
}

}  // namespace hsdl::analysis

#include "analysis/kmeans.hpp"

#include <limits>

#include "common/check.hpp"

namespace hsdl::analysis {

double squared_distance(const float* a, const float* b, std::size_t dim) {
  double s = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

namespace {

/// k-means++ seeding: first centroid uniform, then proportional to the
/// squared distance from the nearest chosen centroid.
std::vector<std::vector<float>> seed_centroids(const float* data,
                                               std::size_t count,
                                               std::size_t dim,
                                               std::size_t k, Rng& rng) {
  std::vector<std::vector<float>> centroids;
  centroids.reserve(k);
  auto sample_row = [&](std::size_t idx) {
    return std::vector<float>(data + idx * dim, data + (idx + 1) * dim);
  };
  centroids.push_back(sample_row(rng.index(count)));

  std::vector<double> d2(count);
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids)
        best = std::min(best,
                        squared_distance(data + i * dim, c.data(), dim));
      d2[i] = best;
      total += best;
    }
    if (total == 0.0) {
      // Fewer distinct points than clusters: duplicate a point.
      centroids.push_back(sample_row(rng.index(count)));
      continue;
    }
    double draw = rng.uniform() * total;
    std::size_t pick = count - 1;
    for (std::size_t i = 0; i < count; ++i) {
      draw -= d2[i];
      if (draw <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(sample_row(pick));
  }
  return centroids;
}

}  // namespace

KmeansResult kmeans(const float* data, std::size_t count, std::size_t dim,
                    const KmeansConfig& config) {
  HSDL_CHECK(config.clusters >= 1);
  HSDL_CHECK_MSG(count >= config.clusters,
                 "fewer samples than clusters");
  HSDL_CHECK(dim >= 1);

  Rng rng(config.seed);
  KmeansResult result;
  result.centroids = seed_centroids(data, count, dim, config.clusters, rng);
  result.assignment.assign(count, 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 1; iter <= config.max_iters; ++iter) {
    result.iterations = iter;
    // Assign.
    double inertia = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < result.centroids.size(); ++c) {
        const double d = squared_distance(data + i * dim,
                                          result.centroids[c].data(), dim);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update.
    std::vector<std::vector<double>> sums(
        config.clusters, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(config.clusters, 0);
    for (std::size_t i = 0; i < count; ++i) {
      auto& s = sums[result.assignment[i]];
      const float* row = data + i * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += row[d];
      ++counts[result.assignment[i]];
    }
    for (std::size_t c = 0; c < config.clusters; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid alive
      for (std::size_t d = 0; d < dim; ++d)
        result.centroids[c][d] =
            static_cast<float>(sums[c][d] / static_cast<double>(counts[c]));
    }

    if (prev_inertia - inertia <= config.tolerance * prev_inertia) break;
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace hsdl::analysis

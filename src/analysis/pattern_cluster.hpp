// Layout pattern clustering in feature-tensor space.
//
// Groups clips by the spectral signature the paper's feature tensor
// encodes — the wafer-clustering application of its references [10, 11].
// Typical use: cluster detected hotspots to find the distinct failing
// pattern families, then review one representative (medoid) per family
// instead of every hit.
#pragma once

#include <vector>

#include "analysis/kmeans.hpp"
#include "fte/feature_tensor.hpp"
#include "layout/clip.hpp"

namespace hsdl::analysis {

struct PatternClusterConfig {
  fte::FeatureTensorConfig feature;
  KmeansConfig kmeans;
};

struct PatternCluster {
  std::size_t size = 0;
  std::size_t medoid = 0;  ///< index into the input clip list
  double mean_distance = 0.0;  ///< mean distance of members to centroid
};

struct PatternClusterResult {
  std::vector<std::size_t> assignment;  ///< per input clip
  std::vector<PatternCluster> clusters;
};

/// Clusters clips by their feature tensors. Empty clusters (possible when
/// patterns repeat exactly) report size 0 and medoid 0.
PatternClusterResult cluster_patterns(
    const std::vector<layout::Clip>& clips,
    const PatternClusterConfig& config);

}  // namespace hsdl::analysis

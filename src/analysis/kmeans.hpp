// k-means clustering over dense float vectors (k-means++ seeding, Lloyd
// iterations) — the workhorse under spectral pattern clustering
// (paper references [10, 11]).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace hsdl::analysis {

struct KmeansConfig {
  std::size_t clusters = 8;
  std::size_t max_iters = 100;
  /// Stop when total inertia improves by less than this fraction.
  double tolerance = 1e-4;
  std::uint64_t seed = 1;
};

struct KmeansResult {
  std::vector<std::vector<float>> centroids;  ///< [clusters][dim]
  std::vector<std::size_t> assignment;        ///< per sample
  double inertia = 0.0;  ///< sum of squared distances to assigned centroid
  std::size_t iterations = 0;
};

/// Clusters `count` vectors of `dim` floats stored back-to-back in `data`.
/// Requires count >= clusters >= 1.
KmeansResult kmeans(const float* data, std::size_t count, std::size_t dim,
                    const KmeansConfig& config);

/// Squared Euclidean distance between two `dim`-vectors.
double squared_distance(const float* a, const float* b, std::size_t dim);

}  // namespace hsdl::analysis

// Design-rule checking for single-layer clips.
//
// Checks the two rules the generator's DesignRules encode — minimum width
// and minimum spacing — plus off-grid edges. Used to audit generated
// patterns (the stress knob intentionally permits sub-rule spacing, and
// DRC quantifies exactly where) and to validate imported GDSII data.
#pragma once

#include <vector>

#include "layout/clip.hpp"
#include "layout/generator.hpp"

namespace hsdl::layout {

enum class DrcViolationType { kMinWidth, kMinSpacing, kOffGrid };

const char* to_string(DrcViolationType type);

struct DrcViolation {
  DrcViolationType type;
  geom::Rect where;         ///< offending shape (or the gap region)
  geom::Coord measured = 0; ///< offending dimension, nm
  geom::Coord required = 0; ///< rule value, nm
};

struct DrcReport {
  std::vector<DrcViolation> violations;
  bool clean() const { return violations.empty(); }
  std::size_t count(DrcViolationType type) const;
};

/// Checks every shape (width, grid) and every shape pair (spacing).
/// Overlapping/abutting shapes are treated as connected — no spacing
/// check between them.
DrcReport check_rules(const Clip& clip, const DesignRules& rules);

}  // namespace hsdl::layout

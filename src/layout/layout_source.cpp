#include "layout/layout_source.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "geom/coord.hpp"

namespace hsdl::layout {
namespace {

struct Fnv64 {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void mix_coord(geom::Coord c) { mix(static_cast<std::uint64_t>(c)); }
};

constexpr std::size_t kMaxDescentDepth = 64;

}  // namespace

std::size_t WindowKeyHash::operator()(const WindowKey& k) const {
  Fnv64 f;
  f.mix(k.cell_hash);
  f.mix_coord(k.offset.x);
  f.mix_coord(k.offset.y);
  f.mix(k.empty_window ? 1 : 0);
  return static_cast<std::size_t>(f.h);
}

FlatSource::FlatSource(const Layout& chip) : chip_(&chip) {
  Fnv64 f;
  f.mix_coord(chip.extent().lo.x);
  f.mix_coord(chip.extent().lo.y);
  f.mix_coord(chip.extent().hi.x);
  f.mix_coord(chip.extent().hi.y);
  for (const geom::Rect& r : chip.shapes()) {
    f.mix_coord(r.lo.x);
    f.mix_coord(r.lo.y);
    f.mix_coord(r.hi.x);
    f.mix_coord(r.hi.y);
  }
  fingerprint_ = f.h;
}

HierSource::HierSource(const HierLayout& hier, std::int16_t layer)
    : hier_(&hier), layer_(layer) {
  Fnv64 f;
  f.mix(hier.fingerprint());
  f.mix(static_cast<std::uint64_t>(static_cast<std::uint16_t>(layer)));
  fingerprint_ = f.h;
}

Clip HierSource::extract_clip(const geom::Rect& window) const {
  Clip clip;
  clip.window = window;
  hier_->query(window, layer_, clip.shapes);
  return clip;
}

std::optional<WindowKey> HierSource::window_key(
    const geom::Rect& window) const {
  const std::vector<HierCell>& cells = hier_->cells();
  std::size_t cur = hier_->top();
  geom::Point offset{0, 0};  // current cell's frame origin, top coords
  bool descended = false;
  for (std::size_t depth = 0; depth < kMaxDescentDepth; ++depth) {
    const HierCell& cell = cells[cur];
    // Does any local shape on the served layer reach into the window?
    bool local = false;
    for (std::size_t i = 0; i < cell.shapes.size() && !local; ++i)
      local = cell.layers[i] == layer_ &&
              cell.shapes[i].shifted(offset).overlaps(window);
    // Count placement instances whose subtree bbox overlaps the window
    // (early-out past one — only the exactly-one case descends).
    std::int64_t contributors = 0;
    std::size_t next_cell = 0;
    geom::Point next_offset;
    for (const HierPlacement& p : cell.placements) {
      const geom::Rect& cb = cells[p.cell].bbox;
      if (cb.empty()) continue;
      const geom::Point base = offset + p.at;
      std::int32_t i_lo = 0, i_hi = 0, j_lo = 0, j_hi = 0;
      if (p.cols > 1) {
        i_lo = static_cast<std::int32_t>(std::max<geom::Coord>(
            0,
            geom::floor_div(window.lo.x - base.x - cb.hi.x, p.col_pitch) +
                1));
        i_hi = static_cast<std::int32_t>(std::min<geom::Coord>(
            p.cols - 1, geom::floor_div(window.hi.x - base.x - cb.lo.x - 1,
                                        p.col_pitch)));
      } else if (base.x + cb.lo.x >= window.hi.x ||
                 base.x + cb.hi.x <= window.lo.x) {
        continue;
      }
      if (p.rows > 1) {
        j_lo = static_cast<std::int32_t>(std::max<geom::Coord>(
            0,
            geom::floor_div(window.lo.y - base.y - cb.hi.y, p.row_pitch) +
                1));
        j_hi = static_cast<std::int32_t>(std::min<geom::Coord>(
            p.rows - 1, geom::floor_div(window.hi.y - base.y - cb.lo.y - 1,
                                        p.row_pitch)));
      } else if (base.y + cb.lo.y >= window.hi.y ||
                 base.y + cb.hi.y <= window.lo.y) {
        continue;
      }
      if (i_lo > i_hi || j_lo > j_hi) continue;
      contributors += static_cast<std::int64_t>(i_hi - i_lo + 1) *
                      (j_hi - j_lo + 1);
      if (contributors > 1) break;
      next_cell = p.cell;
      next_offset = p.origin(i_lo, j_lo) + offset;
    }
    if (local || contributors > 1) {
      // The window's content is pinned to this cell's subtree but not
      // to a single child — key here, unless "here" is the top cell
      // (a top-level key is unique per window: pure cache pollution).
      if (!descended) return std::nullopt;
      return WindowKey{cell.content_hash, window.lo - offset, false};
    }
    if (contributors == 0)
      return WindowKey{0, {0, 0}, true};  // nothing under this window
    cur = next_cell;
    offset = next_offset;
    descended = true;
  }
  return std::nullopt;  // depth bound: give up on a key, stay correct
}

}  // namespace hsdl::layout

#include "layout/transform.hpp"

#include "common/check.hpp"

namespace hsdl::layout {
namespace {

using geom::Coord;
using geom::Rect;

// All ops act on a square [0, s) x [0, s) window. Each is expressed as a
// point map applied to rect corners, re-sorted into lo/hi form.
Rect map_rect(const Rect& r, Coord s, Dihedral op) {
  // Map the closed-open rect by transforming its corner span per axis:
  // a mirrored axis [lo, hi) becomes [s - hi, s - lo).
  const Coord xl = r.lo.x, xh = r.hi.x, yl = r.lo.y, yh = r.hi.y;
  const Coord mxl = s - xh, mxh = s - xl;  // mirrored x span
  const Coord myl = s - yh, myh = s - yl;  // mirrored y span
  switch (op) {
    case Dihedral::kIdentity:
      return {{xl, yl}, {xh, yh}};
    case Dihedral::kRot90:  // (x, y) -> (s - y, x)
      return {{myl, xl}, {myh, xh}};
    case Dihedral::kRot180:
      return {{mxl, myl}, {mxh, myh}};
    case Dihedral::kRot270:  // (x, y) -> (y, s - x)
      return {{yl, mxl}, {yh, mxh}};
    case Dihedral::kFlipX:
      return {{mxl, yl}, {mxh, yh}};
    case Dihedral::kFlipY:
      return {{xl, myl}, {xh, myh}};
    case Dihedral::kTranspose:  // (x, y) -> (y, x)
      return {{yl, xl}, {yh, xh}};
    case Dihedral::kAntiTranspose:  // (x, y) -> (s - y, s - x)
      return {{myl, mxl}, {myh, mxh}};
  }
  HSDL_CHECK(false);
  return {};
}

}  // namespace

Clip transformed(const Clip& clip, Dihedral op) {
  HSDL_CHECK_MSG(clip.window.width() == clip.window.height(),
                 "dihedral transforms need a square window");
  const Clip base = clip.normalized();
  const Coord s = base.window.width();
  Clip out;
  out.window = base.window;
  out.shapes.reserve(base.shapes.size());
  for (const Rect& r : base.shapes)
    out.shapes.push_back(map_rect(r.intersect(base.window), s, op));
  return out;
}

}  // namespace hsdl::layout

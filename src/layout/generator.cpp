#include "layout/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "geom/region.hpp"

namespace hsdl::layout {
namespace {

using geom::Coord;
using geom::Rect;

/// Emits the shapes of one archetype into a window; holds the shared
/// randomized-dimension helpers.
struct Emitter {
  const GeneratorConfig& cfg;
  Rng& rng;
  Rect window;

  Coord snap(Coord v) const {
    const Coord g = cfg.rules.grid;
    return (v / g) * g;
  }

  /// Random dimension in [floor, floor + range], pulled toward the floor
  /// when stress is high. Snapped to grid, never below the floor.
  Coord dim(Coord floor_v, Coord range) const {
    double u = rng.uniform();
    double w = std::pow(u, 1.0 + 3.0 * cfg.stress);
    Coord v =
        floor_v + snap(static_cast<Coord>(w * static_cast<double>(range)));
    return std::max(v, floor_v);
  }

  Coord line_width() const {
    return dim(cfg.rules.min_width, 3 * cfg.rules.min_width);
  }
  Coord line_space() const {
    // Under stress, a fraction of arrays is drawn with sub-rule spacing —
    // the aggressive pitches where real layouts go marginal.
    if (cfg.stress > 0.0 && rng.bernoulli(cfg.stress * 0.25))
      return dim(std::max(cfg.rules.grid, cfg.rules.min_space / 2),
                 cfg.rules.min_space);
    return dim(cfg.rules.min_space, 4 * cfg.rules.min_space);
  }

  std::vector<Rect> clip_to_window(const std::vector<Rect>& in) const {
    std::vector<Rect> out;
    out.reserve(in.size());
    for (const Rect& r : in) {
      Rect c = r.intersect(window);
      if (!c.empty() && c.width() >= cfg.rules.grid &&
          c.height() >= cfg.rules.grid)
        out.push_back(c);
    }
    return out;
  }

  /// Horizontal or vertical line/space array filling the window.
  std::vector<Rect> line_space_array() const {
    std::vector<Rect> out;
    const bool horizontal = rng.bernoulli(0.5);
    const Coord w = line_width();
    const Coord s = line_space();
    const Coord pitch = w + s;
    const Coord offset = snap(rng.uniform_int(0, pitch - 1));
    if (horizontal) {
      for (Coord y = window.lo.y - pitch + offset; y < window.hi.y; y += pitch)
        out.push_back({{window.lo.x, y}, {window.hi.x, y + w}});
    } else {
      for (Coord x = window.lo.x - pitch + offset; x < window.hi.x; x += pitch)
        out.push_back({{x, window.lo.y}, {x + w, window.hi.y}});
    }
    return clip_to_window(out);
  }

  /// Line array interrupted by a tip-to-tip gap column — the classic
  /// line-end pull-back hotspot structure.
  std::vector<Rect> tip_to_tip() const {
    std::vector<Rect> out;
    const Coord w = line_width();
    const Coord s = line_space();
    const Coord pitch = w + s;
    // Gap dimension: at high stress, close to (or below) min_space.
    const Coord gap = dim(cfg.rules.min_space / 2, 3 * cfg.rules.min_space);
    const Coord gap_x =
        window.lo.x + snap(static_cast<Coord>(
                          rng.uniform(0.3, 0.7) *
                          static_cast<double>(window.width())));
    // Not every track is cut; cut probability rises with stress.
    const double cut_p = 0.3 + 0.5 * cfg.stress;
    for (Coord y = window.lo.y; y + w <= window.hi.y; y += pitch) {
      if (rng.bernoulli(cut_p)) {
        out.push_back({{window.lo.x, y}, {gap_x, y + w}});
        out.push_back({{gap_x + gap, y}, {window.hi.x, y + w}});
      } else {
        out.push_back({{window.lo.x, y}, {window.hi.x, y + w}});
      }
    }
    return clip_to_window(out);
  }

  /// Long wires with Z-shaped jogs.
  std::vector<Rect> l_jog() const {
    std::vector<Rect> out;
    const Coord w = line_width();
    const Coord s = line_space();
    const Coord pitch = 2 * (w + s);
    for (Coord y = window.lo.y + pitch; y + w + pitch <= window.hi.y;
         y += pitch) {
      const Coord jog_x =
          window.lo.x + snap(static_cast<Coord>(
                            rng.uniform(0.25, 0.75) *
                            static_cast<double>(window.width())));
      const Coord dy = (w + s) * (rng.bernoulli(0.5) ? 1 : -1);
      const Coord y2 = y + dy;
      out.push_back({{window.lo.x, y}, {jog_x + w, y + w}});
      out.push_back(
          {{jog_x, std::min(y, y2)}, {jog_x + w, std::max(y, y2) + w}});
      out.push_back({{jog_x, y2}, {window.hi.x, y2 + w}});
    }
    return clip_to_window(out);
  }

  /// Interdigitated comb fingers from two opposite window edges.
  std::vector<Rect> comb() const {
    std::vector<Rect> out;
    const Coord w = line_width();
    const Coord s = line_space();
    const Coord pitch = w + s;
    const Coord spine = 2 * line_width();
    const Coord finger_gap = dim(cfg.rules.min_space, 2 * cfg.rules.min_space);
    out.push_back(
        {{window.lo.x, window.lo.y}, {window.lo.x + spine, window.hi.y}});
    out.push_back(
        {{window.hi.x - spine, window.lo.y}, {window.hi.x, window.hi.y}});
    bool from_left = true;
    for (Coord y = window.lo.y + s; y + w <= window.hi.y - s; y += pitch) {
      if (from_left)
        out.push_back({{window.lo.x + spine, y},
                       {window.hi.x - spine - finger_gap, y + w}});
      else
        out.push_back({{window.lo.x + spine + finger_gap, y},
                       {window.hi.x - spine, y + w}});
      from_left = !from_left;
    }
    return clip_to_window(out);
  }

  /// Square contact/via array; occasional skipped sites make the
  /// neighbourhood irregular.
  std::vector<Rect> contacts() const {
    std::vector<Rect> out;
    const Coord size = dim(cfg.rules.min_width, cfg.rules.min_width);
    const Coord gap = dim(cfg.rules.min_space, 3 * cfg.rules.min_space);
    const Coord pitch = size + gap;
    const double skip_p = rng.uniform(0.0, 0.3);
    for (Coord y = window.lo.y + gap; y + size <= window.hi.y; y += pitch)
      for (Coord x = window.lo.x + gap; x + size <= window.hi.x; x += pitch)
        if (!rng.bernoulli(skip_p))
          out.push_back(Rect::from_xywh(x, y, size, size));
    return clip_to_window(out);
  }

  /// Random DRC-aware Manhattan segments, greedily packed. Stress lets a
  /// fraction of placements enforce a sub-rule spacing floor, seeding
  /// potential bridging sites.
  std::vector<Rect> random_routing() const {
    const Coord min_space = cfg.rules.min_space;
    geom::RectIndex index(window.inflated(4 * min_space), 4 * min_space);
    const int attempts = 140;
    for (int i = 0; i < attempts; ++i) {
      const bool horizontal = rng.bernoulli(0.5);
      const Coord w = line_width();
      const Coord len = dim(4 * cfg.rules.min_width, window.width() / 2);
      const Coord x =
          window.lo.x + snap(rng.uniform_int(0, window.width() - 1));
      const Coord y =
          window.lo.y + snap(rng.uniform_int(0, window.height() - 1));
      Rect r = horizontal ? Rect::from_xywh(x, y, len, w)
                          : Rect::from_xywh(x, y, w, len);
      r = r.intersect(window);
      if (r.empty() || r.width() < cfg.rules.grid ||
          r.height() < cfg.rules.grid)
        continue;
      const Coord enforce =
          cfg.stress > 0.0 && rng.bernoulli(cfg.stress * 0.5)
              ? std::max<Coord>(cfg.rules.grid, min_space / 2)
              : min_space;
      if (index.violates_spacing(r, enforce)) continue;
      index.insert(r);
    }
    return clip_to_window(index.rects());
  }

  /// One isolated feature — prints robustly, anchors the easy end of the
  /// label distribution.
  std::vector<Rect> isolated() const {
    const Coord w = dim(2 * cfg.rules.min_width, 4 * cfg.rules.min_width);
    const Coord h = dim(2 * cfg.rules.min_width, window.height() / 2);
    const Coord x =
        window.lo.x + snap(rng.uniform_int(0, window.width() - w - 1));
    const Coord y =
        window.lo.y + snap(rng.uniform_int(0, window.height() - h - 1));
    return clip_to_window({Rect::from_xywh(x, y, w, h)});
  }

  std::vector<Rect> emit(Archetype a) const {
    switch (a) {
      case Archetype::kLineSpace:
        return line_space_array();
      case Archetype::kTipToTip:
        return tip_to_tip();
      case Archetype::kLJog:
        return l_jog();
      case Archetype::kComb:
        return comb();
      case Archetype::kContacts:
        return contacts();
      case Archetype::kRandomRouting:
        return random_routing();
      case Archetype::kIsolated:
        return isolated();
      case Archetype::kMixed:
        break;  // handled by ClipGenerator::generate
    }
    HSDL_CHECK_MSG(false, "emit() called with composite archetype");
    return {};
  }
};

}  // namespace

const char* to_string(Archetype a) {
  switch (a) {
    case Archetype::kLineSpace:
      return "line-space";
    case Archetype::kTipToTip:
      return "tip-to-tip";
    case Archetype::kLJog:
      return "l-jog";
    case Archetype::kComb:
      return "comb";
    case Archetype::kContacts:
      return "contacts";
    case Archetype::kRandomRouting:
      return "random-routing";
    case Archetype::kIsolated:
      return "isolated";
    case Archetype::kMixed:
      return "mixed";
  }
  return "?";
}

ClipGenerator::ClipGenerator(const GeneratorConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  HSDL_CHECK(config.clip_size > 0);
  HSDL_CHECK(config.rules.grid > 0);
  HSDL_CHECK(config.rules.min_width >= config.rules.grid);
  HSDL_CHECK(config.rules.min_space >= config.rules.grid);
  HSDL_CHECK(config.stress >= 0.0 && config.stress <= 1.0);
  HSDL_CHECK_MSG(config.clip_size % config.rules.grid == 0,
                 "clip size must be on the manufacturing grid");
}

Clip ClipGenerator::generate() {
  const auto pick = static_cast<Archetype>(rng_.index(kNumArchetypes));
  return generate(pick);
}

Clip ClipGenerator::generate(Archetype archetype) {
  Clip clip;
  clip.window = Rect::from_xywh(0, 0, config_.clip_size, config_.clip_size);

  if (archetype != Archetype::kMixed) {
    Emitter em{config_, rng_, clip.window};
    clip.shapes = em.emit(archetype);
    return clip;
  }

  // kMixed: two simple archetypes, one per window half.
  const auto a = static_cast<Archetype>(rng_.index(kNumArchetypes - 1));
  const auto b = static_cast<Archetype>(rng_.index(kNumArchetypes - 1));
  const bool vertical_split = rng_.bernoulli(0.5);
  Rect first = clip.window;
  Rect second = clip.window;
  if (vertical_split) {
    first.hi.x = clip.window.center().x;
    second.lo.x = first.hi.x + config_.rules.min_space;
  } else {
    first.hi.y = clip.window.center().y;
    second.lo.y = first.hi.y + config_.rules.min_space;
  }
  Emitter ea{config_, rng_, first};
  clip.shapes = ea.emit(a);
  Emitter eb{config_, rng_, second};
  const auto more = eb.emit(b);
  clip.shapes.insert(clip.shapes.end(), more.begin(), more.end());
  return clip;
}

}  // namespace hsdl::layout

// Synthetic layout clip generator.
//
// The DAC'17 paper evaluates on the ICCAD-2012 contest GDS suite plus three
// proprietary industry testcases, none of which are redistributable. This
// generator is the documented substitution (DESIGN.md §4): it emits clips
// drawn from lithographically meaningful pattern archetypes — dense
// line/space arrays, tip-to-tip line ends, jogs, combs, contact arrays and
// random Manhattan routing — with dimensions randomized around a design
// rule set. A `stress` knob biases dimensions toward the design-rule floor
// where diffraction failures (labelled later by the litho simulator)
// become likely, controlling the hotspot rate of the emitted population.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "layout/clip.hpp"

namespace hsdl::layout {

/// Minimal single-layer design-rule set (values in nm).
struct DesignRules {
  geom::Coord min_width = 40;
  geom::Coord min_space = 40;
  geom::Coord grid = 10;  ///< manufacturing grid; all edges snap to it
};

enum class Archetype {
  kLineSpace,      ///< parallel line/space array
  kTipToTip,       ///< facing line ends with a critical gap
  kLJog,           ///< long wires with L/Z jogs
  kComb,           ///< interdigitated comb fingers
  kContacts,       ///< square contact/via array
  kRandomRouting,  ///< random DRC-clean Manhattan segments
  kIsolated,       ///< a single isolated feature (easy, non-hotspot-ish)
  kMixed,          ///< two archetypes split across the window
};

/// Number of distinct archetypes (excluding kMixed recursion).
inline constexpr int kNumArchetypes = 8;

const char* to_string(Archetype a);

struct GeneratorConfig {
  DesignRules rules;
  geom::Coord clip_size = 1200;  ///< square window edge, nm
  /// 0 = relaxed dimensions everywhere, 1 = everything at the rule floor.
  /// Around 0.3-0.5 yields the hotspot rates of the paper's testcases.
  double stress = 0.4;
};

/// Deterministic clip generator: same seed + config => same clip sequence.
class ClipGenerator {
 public:
  ClipGenerator(const GeneratorConfig& config, std::uint64_t seed);

  /// Generates one clip with a randomly chosen archetype.
  Clip generate();

  /// Generates one clip of a specific archetype.
  Clip generate(Archetype archetype);

  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
  Rng rng_;
};

}  // namespace hsdl::layout

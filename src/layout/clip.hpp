// Layout clip: the unit of hotspot detection.
//
// A clip is a fixed-size window cut from a layout, carrying the (flattened,
// single-layer) mask shapes that intersect the window. The DAC'17 flow
// classifies 1200 x 1200 nm^2 clips; the size is a parameter here.
#pragma once

#include <vector>

#include "geom/rect.hpp"

namespace hsdl::layout {

struct Clip {
  /// The window in layout coordinates (nm).
  geom::Rect window;
  /// Mask shapes clipped to the window.
  std::vector<geom::Rect> shapes;

  /// Fraction of the window area covered by shapes, in [0, 1].
  double density() const;

  /// Returns a copy whose window's lower-left corner is at the origin.
  Clip normalized() const;
};

inline double Clip::density() const {
  if (window.empty()) return 0.0;
  geom::Area covered = 0;
  for (const geom::Rect& r : shapes) covered += r.intersect(window).area();
  return static_cast<double>(covered) / static_cast<double>(window.area());
}

inline Clip Clip::normalized() const {
  Clip out;
  const geom::Point d{-window.lo.x, -window.lo.y};
  out.window = window.shifted(d);
  out.shapes.reserve(shapes.size());
  for (const geom::Rect& r : shapes) out.shapes.push_back(r.shifted(d));
  return out;
}

}  // namespace hsdl::layout

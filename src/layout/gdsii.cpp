#include "layout/gdsii.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <string_view>
#include <unordered_map>

#include "common/check.hpp"
#include "common/io.hpp"

namespace hsdl::layout {
namespace {

// Record types (subset).
enum : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kSref = 0x0A,
  kAref = 0x0B,
  kSname = 0x12,
  kColRow = 0x13,
  kLayer = 0x0D,
  kDatatype = 0x0E,
  kXy = 0x10,
  kEndEl = 0x11,
};

// Data types.
enum : std::uint8_t {
  kNoData = 0x00,
  kInt16 = 0x02,
  kInt32 = 0x03,
  kReal8 = 0x05,
  kAscii = 0x06,
};

void put_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v >> 8));
  buf.push_back(static_cast<char>(v & 0xFF));
}

void put_u32(std::string& buf, std::uint32_t v) {
  put_u16(buf, static_cast<std::uint16_t>(v >> 16));
  put_u16(buf, static_cast<std::uint16_t>(v & 0xFFFF));
}

void put_u64(std::string& buf, std::uint64_t v) {
  put_u32(buf, static_cast<std::uint32_t>(v >> 32));
  put_u32(buf, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
}

void emit(std::ostream& os, std::uint8_t rec, std::uint8_t dtype,
          const std::string& payload) {
  // Length includes the 4-byte header; GDSII pads odd payloads.
  std::string body = payload;
  if (body.size() % 2 == 1) body.push_back('\0');
  const auto len = static_cast<std::uint16_t>(body.size() + 4);
  std::string header;
  put_u16(header, len);
  header.push_back(static_cast<char>(rec));
  header.push_back(static_cast<char>(dtype));
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
}

void emit_i16(std::ostream& os, std::uint8_t rec, std::int16_t v) {
  std::string p;
  put_u16(p, static_cast<std::uint16_t>(v));
  emit(os, rec, kInt16, p);
}

void emit_ascii(std::ostream& os, std::uint8_t rec, const std::string& s) {
  emit(os, rec, kAscii, s);
}

void put_point(std::string& xy, geom::Point p) {
  put_u32(xy, static_cast<std::uint32_t>(static_cast<std::int32_t>(p.x)));
  put_u32(xy, static_cast<std::uint32_t>(static_cast<std::int32_t>(p.y)));
}

/// GDSII timestamps: 6 int16 fields (year, month, day, hour, min, sec),
/// twice (modification + access). Fixed epoch keeps output deterministic.
void emit_timestamps(std::ostream& os, std::uint8_t rec) {
  std::string p;
  for (int rep = 0; rep < 2; ++rep) {
    const std::int16_t stamp[6] = {2017, 6, 18, 0, 0, 0};  // DAC'17
    for (std::int16_t v : stamp)
      put_u16(p, static_cast<std::uint16_t>(v));
  }
  emit(os, rec, kInt16, p);
}

struct Record {
  std::uint8_t type = 0;
  std::uint8_t dtype = 0;
  std::string_view payload;
};

/// Walks the record stream over an in-memory buffer via the shared
/// bounds-checked reader; every diagnostic carries the record index and
/// the byte offset where decoding stopped.
class RecordStream {
 public:
  RecordStream(std::string_view data, std::size_t max_record_bytes)
      : reader_(data, "GDSII"), max_record_bytes_(max_record_bytes) {}

  bool next(Record& rec) {
    if (reader_.at_end()) return false;
    const std::uint64_t start = reader_.pos();
    if (reader_.remaining() < 4)
      fail_at(start, "truncated record header");
    const std::uint16_t len = reader_.u16_be();
    rec.type = reader_.u8();
    rec.dtype = reader_.u8();
    if (len < 4) fail_at(start, "record length below header size");
    if (len > max_record_bytes_)
      fail_at(start, "record length " + std::to_string(len) +
                         " exceeds the " +
                         std::to_string(max_record_bytes_) +
                         "-byte record bound");
    if (reader_.remaining() < static_cast<std::size_t>(len) - 4)
      fail_at(start, "truncated record payload");
    rec.payload = reader_.bytes(static_cast<std::size_t>(len) - 4);
    ++index_;
    return true;
  }

  /// Trailing bytes after ENDLIB must be NUL tape padding only.
  void expect_only_padding() {
    while (!reader_.at_end())
      if (reader_.u8() != 0)
        reader_.fail("non-padding trailing data after ENDLIB");
  }

  std::size_t record_index() const { return index_; }
  std::uint64_t offset() const { return reader_.pos(); }

  [[noreturn]] void fail(const std::string& msg) const {
    fail_at(reader_.pos(), msg);
  }

 private:
  [[noreturn]] void fail_at(std::uint64_t at, const std::string& msg) const {
    throw io::IoError(msg + " (record #" + std::to_string(index_) + ")", at,
                      "GDSII");
  }

  io::ByteReader reader_;
  std::size_t max_record_bytes_;
  std::size_t index_ = 0;  // records fully decoded so far
};

std::int16_t get_i16(std::string_view p, std::size_t at) {
  HSDL_CHECK_MSG(at + 2 <= p.size(), "GDSII: record payload too short");
  return static_cast<std::int16_t>(
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[at])) << 8) |
      static_cast<unsigned char>(p[at + 1]));
}

std::int32_t get_i32(std::string_view p, std::size_t at) {
  HSDL_CHECK_MSG(at + 4 <= p.size(), "GDSII: record payload too short");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v = (v << 8) | static_cast<unsigned char>(p[at + static_cast<std::size_t>(i)]);
  return static_cast<std::int32_t>(v);
}

std::uint64_t get_u64(std::string_view p, std::size_t at) {
  HSDL_CHECK_MSG(at + 8 <= p.size(), "GDSII: record payload too short");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v = (v << 8) | static_cast<unsigned char>(p[at + static_cast<std::size_t>(i)]);
  return v;
}

std::string trim_nul(std::string_view s) {
  while (!s.empty() && s.back() == '\0') s.remove_suffix(1);
  return std::string(s);
}

}  // namespace

void GdsReadOptions::validate() const {
  HSDL_CHECK_MSG(max_record_bytes >= 8,
                 "GDSII options: max_record_bytes must cover at least a "
                 "header plus a minimal payload, got "
                     << max_record_bytes);
  HSDL_CHECK_MSG(max_record_bytes <= 65535,
                 "GDSII options: max_record_bytes cannot exceed the "
                 "16-bit record length field (65535), got "
                     << max_record_bytes);
  HSDL_CHECK_MSG(layer_filter < 32768,
                 "GDSII options: layer_filter " << layer_filter
                                                << " is outside the GDSII "
                                                   "layer range");
}

std::uint64_t to_gds_real(double value) {
  // Excess-64 base-16: bit 63 sign, bits 62-56 exponent (power of 16,
  // biased by 64), bits 55-0 mantissa with the value = mantissa * 16^(e-64),
  // mantissa normalized to [1/16, 1).
  if (value == 0.0) return 0;
  std::uint64_t sign = 0;
  if (value < 0) {
    sign = 1ULL << 63;
    value = -value;
  }
  int exponent = 64;
  while (value >= 1.0) {
    value /= 16.0;
    ++exponent;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exponent;
  }
  HSDL_CHECK_MSG(exponent >= 0 && exponent < 128,
                 "value out of GDSII real range");
  const auto mantissa =
      static_cast<std::uint64_t>(std::ldexp(value, 56));  // value * 2^56
  return sign | (static_cast<std::uint64_t>(exponent) << 56) |
         (mantissa & ((1ULL << 56) - 1));
}

double from_gds_real(std::uint64_t bits) {
  if (bits == 0) return 0.0;
  const bool negative = (bits >> 63) != 0;
  const int exponent = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const double mantissa =
      std::ldexp(static_cast<double>(bits & ((1ULL << 56) - 1)), -56);
  const double value = mantissa * std::pow(16.0, exponent);
  return negative ? -value : value;
}

std::vector<geom::Rect> GdsCell::rects_on_layer(std::int16_t layer) const {
  std::vector<geom::Rect> out;
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    if (layers[i] != layer) continue;
    for (const geom::Rect& r : boundaries[i].decompose()) out.push_back(r);
  }
  return out;
}

void write_gds(std::ostream& os, const GdsLibrary& lib) {
  emit_i16(os, kHeader, 600);  // stream version 6
  emit_timestamps(os, kBgnLib);
  emit_ascii(os, kLibName, lib.name);
  {
    std::string p;
    put_u64(p, to_gds_real(lib.user_unit));
    put_u64(p, to_gds_real(lib.db_unit_meters));
    emit(os, kUnits, kReal8, p);
  }
  for (const GdsCell& cell : lib.cells) {
    HSDL_CHECK(cell.boundaries.size() == cell.layers.size());
    emit_timestamps(os, kBgnStr);
    emit_ascii(os, kStrName, cell.name);
    for (std::size_t i = 0; i < cell.boundaries.size(); ++i) {
      emit(os, kBoundary, kNoData, "");
      emit_i16(os, kLayer, cell.layers[i]);
      emit_i16(os, kDatatype, 0);
      std::string xy;
      const auto& ring = cell.boundaries[i].ring();
      HSDL_CHECK_MSG(!ring.empty(), "empty boundary");
      for (std::size_t v = 0; v <= ring.size(); ++v)
        put_point(xy, ring[v % ring.size()]);  // closed ring
      emit(os, kXy, kInt32, xy);
      emit(os, kEndEl, kNoData, "");
    }
    for (const GdsRef& ref : cell.refs) {
      HSDL_CHECK_MSG(ref.cols >= 1 && ref.rows >= 1,
                     "GDSII: reference to '"
                         << ref.cell << "' has non-positive repetition "
                         << ref.cols << "x" << ref.rows);
      if (ref.is_array()) {
        HSDL_CHECK_MSG(ref.cols <= 32767 && ref.rows <= 32767,
                       "GDSII: AREF repetition exceeds the 16-bit COLROW "
                       "range");
        HSDL_CHECK_MSG((ref.cols == 1 || ref.col_pitch > 0) &&
                           (ref.rows == 1 || ref.row_pitch > 0),
                       "GDSII: AREF of '" << ref.cell
                                          << "' needs positive pitches");
        emit(os, kAref, kNoData, "");
        emit_ascii(os, kSname, ref.cell);
        std::string colrow;
        put_u16(colrow, static_cast<std::uint16_t>(ref.cols));
        put_u16(colrow, static_cast<std::uint16_t>(ref.rows));
        emit(os, kColRow, kInt16, colrow);
        // 3-point XY: origin, origin + cols*col_pitch along x,
        // origin + rows*row_pitch along y (axis-aligned subset).
        std::string xy;
        put_point(xy, ref.at);
        put_point(xy, {ref.at.x + ref.cols * ref.col_pitch, ref.at.y});
        put_point(xy, {ref.at.x, ref.at.y + ref.rows * ref.row_pitch});
        emit(os, kXy, kInt32, xy);
      } else {
        emit(os, kSref, kNoData, "");
        emit_ascii(os, kSname, ref.cell);
        std::string xy;
        put_point(xy, ref.at);
        emit(os, kXy, kInt32, xy);
      }
      emit(os, kEndEl, kNoData, "");
    }
    emit(os, kEndStr, kNoData, "");
  }
  emit(os, kEndLib, kNoData, "");
  HSDL_CHECK_MSG(os.good(), "GDSII write failed");
}

namespace {

/// Decodes an AREF's COLROW + 3-point XY into the normalized GdsRef
/// repetition form (origin at the lexicographically lowest instance,
/// non-negative pitches). `fail` reports with stream position.
template <typename FailFn>
void decode_aref_geometry(GdsRef& ref, bool have_colrow,
                          std::string_view xy_payload, FailFn&& fail) {
  if (!have_colrow) fail("AREF without COLROW");
  if (xy_payload.size() != 24) fail("AREF XY must hold exactly 3 points");
  const geom::Point origin{get_i32(xy_payload, 0), get_i32(xy_payload, 4)};
  const geom::Point col_ref{get_i32(xy_payload, 8), get_i32(xy_payload, 12)};
  const geom::Point row_ref{get_i32(xy_payload, 16), get_i32(xy_payload, 20)};
  if (col_ref.y != origin.y || row_ref.x != origin.x)
    fail("rotated or sheared AREF (unsupported subset)");
  const geom::Coord col_span = col_ref.x - origin.x;
  const geom::Coord row_span = row_ref.y - origin.y;
  if (col_span % ref.cols != 0 || row_span % ref.rows != 0)
    fail("AREF span not divisible by its COLROW counts");
  ref.at = origin;
  ref.col_pitch = col_span / ref.cols;
  ref.row_pitch = row_span / ref.rows;
  if ((ref.cols > 1 && ref.col_pitch == 0) ||
      (ref.rows > 1 && ref.row_pitch == 0))
    fail("zero-pitch AREF repetition");
  // Normalize negative pitches: move the origin to the low corner so
  // downstream lazy-expansion index math can assume positive steps.
  if (ref.col_pitch < 0) {
    ref.at.x += (ref.cols - 1) * ref.col_pitch;
    ref.col_pitch = -ref.col_pitch;
  }
  if (ref.row_pitch < 0) {
    ref.at.y += (ref.rows - 1) * ref.row_pitch;
    ref.row_pitch = -ref.row_pitch;
  }
}

constexpr std::size_t kMaxFlattenDepth = 64;
/// Expanded-placement ceiling: adversarial files can nest AREFs so that
/// the instance count explodes combinatorially; flattening stops with a
/// diagnostic instead of consuming all memory.
constexpr std::int64_t kMaxFlattenInstances = 1 << 24;

struct Flattener {
  const GdsLibrary& lib;
  std::int16_t layer;
  /// Name -> cell index, built once (the old implementation re-ran a
  /// linear search on every recursive visit).
  std::unordered_map<std::string_view, std::size_t> index;
  std::int64_t instances = 0;
  std::vector<geom::Rect> out;

  explicit Flattener(const GdsLibrary& l, std::int16_t lay)
      : lib(l), layer(lay) {
    index.reserve(lib.cells.size());
    for (std::size_t i = 0; i < lib.cells.size(); ++i)
      index.emplace(lib.cells[i].name, i);
  }

  void visit(const std::string& name, geom::Point offset, std::size_t depth) {
    HSDL_CHECK_MSG(depth < kMaxFlattenDepth,
                   "GDSII: reference cycle or absurd hierarchy depth at "
                   "cell '" << name << "'");
    const auto it = index.find(name);
    HSDL_CHECK_MSG(it != index.end(), "GDSII: unknown cell '" << name << "'");
    const GdsCell& cell = lib.cells[it->second];
    for (const geom::Rect& r : cell.rects_on_layer(layer))
      out.push_back(r.shifted(offset));
    for (const GdsRef& ref : cell.refs) {
      HSDL_CHECK_MSG(ref.cols >= 1 && ref.rows >= 1,
                     "GDSII: non-positive AREF repetition in cell '"
                         << cell.name << "'");
      instances += ref.instances();
      HSDL_CHECK_MSG(instances <= kMaxFlattenInstances,
                     "GDSII: flattening cell '"
                         << name << "' expands past " << kMaxFlattenInstances
                         << " placements (adversarial repetition?)");
      for (std::int32_t j = 0; j < ref.rows; ++j)
        for (std::int32_t i = 0; i < ref.cols; ++i)
          visit(ref.cell, offset + ref.at +
                              geom::Point{i * ref.col_pitch,
                                          j * ref.row_pitch},
                depth + 1);
    }
  }
};

}  // namespace

GdsLibrary read_gds(std::istream& is, const GdsReadOptions& options) {
  options.validate();
  const std::string data = io::read_stream(is);
  RecordStream records(data, options.max_record_bytes);
  GdsLibrary lib;
  lib.cells.clear();
  Record rec;
  bool saw_header = false, in_struct = false, in_element = false;
  bool element_is_boundary = false;
  bool element_is_ref = false;
  bool element_is_aref = false;
  bool have_colrow = false;
  std::int16_t current_layer = 0;
  std::vector<geom::Point> current_ring;
  std::string aref_xy;  // raw 3-point payload, decoded at ENDEL
  GdsRef current_ref;

  while (records.next(rec)) {
    switch (rec.type) {
      case kHeader:
        saw_header = true;
        break;
      case kLibName:
        lib.name = trim_nul(rec.payload);
        break;
      case kUnits:
        lib.user_unit = from_gds_real(get_u64(rec.payload, 0));
        lib.db_unit_meters = from_gds_real(get_u64(rec.payload, 8));
        break;
      case kBgnLib:
      case kDatatype:
        break;  // timestamps / datatype numbers carry no geometry
      case kBgnStr:
        if (in_struct) records.fail("nested BGNSTR");
        lib.cells.emplace_back();
        in_struct = true;
        break;
      case kStrName:
        if (!in_struct) records.fail("STRNAME outside structure");
        lib.cells.back().name = trim_nul(rec.payload);
        break;
      case kEndStr:
        if (!in_struct || in_element) records.fail("unbalanced ENDSTR");
        in_struct = false;
        break;
      case kBoundary:
        if (!in_struct || in_element)
          records.fail("BOUNDARY outside structure");
        in_element = true;
        element_is_boundary = true;
        current_layer = 0;
        current_ring.clear();
        break;
      case kSref:
      case kAref:
        if (!in_struct || in_element)
          records.fail(rec.type == kAref ? "AREF outside structure"
                                         : "SREF outside structure");
        in_element = true;
        element_is_ref = true;
        element_is_aref = rec.type == kAref;
        have_colrow = false;
        aref_xy.clear();
        current_ref = GdsRef{};
        break;
      case kSname:
        if (in_element && element_is_ref)
          current_ref.cell = trim_nul(rec.payload);
        break;
      case kColRow:
        if (in_element && element_is_aref) {
          if (rec.payload.size() < 4) records.fail("short COLROW payload");
          current_ref.cols = get_i16(rec.payload, 0);
          current_ref.rows = get_i16(rec.payload, 2);
          if (current_ref.cols < 1 || current_ref.rows < 1)
            records.fail("non-positive COLROW repetition");
          have_colrow = true;
        }
        break;
      case kLayer:
        if (in_element) current_layer = get_i16(rec.payload, 0);
        break;
      case kXy:
        if (in_element && element_is_ref) {
          if (element_is_aref) {
            aref_xy.assign(rec.payload);
          } else {
            if (rec.payload.size() < 8) records.fail("SREF without XY");
            current_ref.at = {get_i32(rec.payload, 0),
                              get_i32(rec.payload, 4)};
          }
        }
        if (in_element && element_is_boundary) {
          if (rec.payload.size() % 8 != 0) records.fail("odd XY payload");
          const std::size_t n = rec.payload.size() / 8;
          current_ring.clear();
          for (std::size_t i = 0; i < n; ++i)
            current_ring.push_back(
                {get_i32(rec.payload, i * 8),
                 get_i32(rec.payload, i * 8 + 4)});
          // GDSII repeats the first vertex at the end.
          if (current_ring.size() >= 2 &&
              current_ring.front() == current_ring.back())
            current_ring.pop_back();
        }
        break;
      case kEndEl:
        if (in_element && element_is_ref) {
          if (current_ref.cell.empty()) records.fail("SREF without SNAME");
          if (element_is_aref)
            decode_aref_geometry(current_ref, have_colrow, aref_xy,
                                 [&](const char* msg) { records.fail(msg); });
          lib.cells.back().refs.push_back(current_ref);
        }
        if (in_element && element_is_boundary) {
          if (!geom::is_rectilinear_ring(current_ring))
            records.fail("non-rectilinear boundary (unsupported subset)");
          if (options.layer_filter < 0 ||
              current_layer == options.layer_filter) {
            lib.cells.back().boundaries.emplace_back(current_ring);
            lib.cells.back().layers.push_back(current_layer);
          }
        }
        in_element = false;
        element_is_boundary = false;
        element_is_ref = false;
        element_is_aref = false;
        break;
      case kEndLib: {
        if (!saw_header) records.fail("ENDLIB before HEADER");
        records.expect_only_padding();
        if (!options.keep_hierarchy) {
          // Eager resolution: a single flat top cell replaces the
          // hierarchy (the unique unreferenced cell is the top).
          std::set<std::string> referenced;
          for (const GdsCell& cell : lib.cells)
            for (const GdsRef& ref : cell.refs) referenced.insert(ref.cell);
          const GdsCell* top = nullptr;
          for (const GdsCell& cell : lib.cells) {
            if (referenced.count(cell.name)) continue;
            if (top != nullptr)
              records.fail("keep_hierarchy=false requires a unique top "
                           "cell (found at least '" +
                           top->name + "' and '" + cell.name + "')");
            top = &cell;
          }
          if (top == nullptr)
            records.fail("keep_hierarchy=false found no top cell "
                         "(reference cycle)");
          std::set<std::int16_t> layers;
          for (const GdsCell& cell : lib.cells)
            layers.insert(cell.layers.begin(), cell.layers.end());
          GdsCell flat;
          flat.name = top->name;
          for (std::int16_t layer : layers)
            for (const geom::Rect& r : flatten_cell(lib, top->name, layer)) {
              flat.boundaries.push_back(geom::Polygon::from_rect(r));
              flat.layers.push_back(layer);
            }
          lib.cells = {std::move(flat)};
        }
        return lib;
      }
      default:
        if (!options.skip_unknown)
          records.fail("unknown record type " +
                       std::to_string(static_cast<int>(rec.type)) +
                       " with skip_unknown disabled");
        break;  // skip unsupported records (TEXT, properties, ...)
    }
  }
  records.fail("stream ended without ENDLIB");
}

GdsLibrary read_gds(std::istream& is) { return read_gds(is, {}); }

void write_gds_file(const std::string& path, const GdsLibrary& lib) {
  std::ofstream os(path, std::ios::binary);
  HSDL_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  write_gds(os, lib);
}

GdsLibrary read_gds_file(const std::string& path,
                         const GdsReadOptions& options) {
  std::ifstream is(path, std::ios::binary);
  HSDL_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return read_gds(is, options);
}

GdsLibrary read_gds_file(const std::string& path) {
  return read_gds_file(path, {});
}

std::vector<geom::Rect> flatten_cell(const GdsLibrary& lib,
                                     const std::string& cell_name,
                                     std::int16_t layer) {
  Flattener flattener(lib, layer);
  flattener.visit(cell_name, {0, 0}, 0);
  return std::move(flattener.out);
}

GdsLibrary clip_to_gds(const Clip& clip, std::int16_t layer,
                       const std::string& cell_name) {
  GdsLibrary lib;
  GdsCell cell;
  cell.name = cell_name;
  for (const geom::Rect& r : clip.shapes) {
    cell.boundaries.push_back(geom::Polygon::from_rect(r));
    cell.layers.push_back(layer);
  }
  lib.cells.push_back(std::move(cell));
  return lib;
}

Clip gds_to_clip(const GdsLibrary& lib, std::int16_t layer) {
  HSDL_CHECK_MSG(!lib.cells.empty(), "GDSII library has no cells");
  Clip clip;
  clip.shapes = lib.cells.front().rects_on_layer(layer);
  geom::Rect bbox;
  for (const geom::Rect& r : clip.shapes) bbox = bbox.bbox_union(r);
  clip.window = bbox;
  return clip;
}

}  // namespace hsdl::layout

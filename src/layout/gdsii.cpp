#include "layout/gdsii.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>

#include "common/check.hpp"
#include "common/io.hpp"

namespace hsdl::layout {
namespace {

// Record types (subset).
enum : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kSref = 0x0A,
  kSname = 0x12,
  kLayer = 0x0D,
  kDatatype = 0x0E,
  kXy = 0x10,
  kEndEl = 0x11,
};

// Data types.
enum : std::uint8_t {
  kNoData = 0x00,
  kInt16 = 0x02,
  kInt32 = 0x03,
  kReal8 = 0x05,
  kAscii = 0x06,
};

void put_u16(std::string& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v >> 8));
  buf.push_back(static_cast<char>(v & 0xFF));
}

void put_u32(std::string& buf, std::uint32_t v) {
  put_u16(buf, static_cast<std::uint16_t>(v >> 16));
  put_u16(buf, static_cast<std::uint16_t>(v & 0xFFFF));
}

void put_u64(std::string& buf, std::uint64_t v) {
  put_u32(buf, static_cast<std::uint32_t>(v >> 32));
  put_u32(buf, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
}

void emit(std::ostream& os, std::uint8_t rec, std::uint8_t dtype,
          const std::string& payload) {
  // Length includes the 4-byte header; GDSII pads odd payloads.
  std::string body = payload;
  if (body.size() % 2 == 1) body.push_back('\0');
  const auto len = static_cast<std::uint16_t>(body.size() + 4);
  std::string header;
  put_u16(header, len);
  header.push_back(static_cast<char>(rec));
  header.push_back(static_cast<char>(dtype));
  os.write(header.data(), static_cast<std::streamsize>(header.size()));
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
}

void emit_i16(std::ostream& os, std::uint8_t rec, std::int16_t v) {
  std::string p;
  put_u16(p, static_cast<std::uint16_t>(v));
  emit(os, rec, kInt16, p);
}

void emit_ascii(std::ostream& os, std::uint8_t rec, const std::string& s) {
  emit(os, rec, kAscii, s);
}

/// GDSII timestamps: 6 int16 fields (year, month, day, hour, min, sec),
/// twice (modification + access). Fixed epoch keeps output deterministic.
void emit_timestamps(std::ostream& os, std::uint8_t rec) {
  std::string p;
  for (int rep = 0; rep < 2; ++rep) {
    const std::int16_t stamp[6] = {2017, 6, 18, 0, 0, 0};  // DAC'17
    for (std::int16_t v : stamp)
      put_u16(p, static_cast<std::uint16_t>(v));
  }
  emit(os, rec, kInt16, p);
}

struct Record {
  std::uint8_t type = 0;
  std::uint8_t dtype = 0;
  std::string_view payload;
};

/// Walks the record stream over an in-memory buffer via the shared
/// bounds-checked reader; every diagnostic carries the record index and
/// the byte offset where decoding stopped.
class RecordStream {
 public:
  explicit RecordStream(std::string_view data)
      : reader_(data, "GDSII") {}

  bool next(Record& rec) {
    if (reader_.at_end()) return false;
    const std::uint64_t start = reader_.pos();
    if (reader_.remaining() < 4)
      fail_at(start, "truncated record header");
    const std::uint16_t len = reader_.u16_be();
    rec.type = reader_.u8();
    rec.dtype = reader_.u8();
    if (len < 4) fail_at(start, "record length below header size");
    if (reader_.remaining() < static_cast<std::size_t>(len) - 4)
      fail_at(start, "truncated record payload");
    rec.payload = reader_.bytes(static_cast<std::size_t>(len) - 4);
    ++index_;
    return true;
  }

  /// Trailing bytes after ENDLIB must be NUL tape padding only.
  void expect_only_padding() {
    while (!reader_.at_end())
      if (reader_.u8() != 0)
        reader_.fail("non-padding trailing data after ENDLIB");
  }

  std::size_t record_index() const { return index_; }
  std::uint64_t offset() const { return reader_.pos(); }

  [[noreturn]] void fail(const std::string& msg) const {
    fail_at(reader_.pos(), msg);
  }

 private:
  [[noreturn]] void fail_at(std::uint64_t at, const std::string& msg) const {
    throw io::IoError(msg + " (record #" + std::to_string(index_) + ")", at,
                      "GDSII");
  }

  io::ByteReader reader_;
  std::size_t index_ = 0;  // records fully decoded so far
};

std::int16_t get_i16(std::string_view p, std::size_t at) {
  HSDL_CHECK_MSG(at + 2 <= p.size(), "GDSII: record payload too short");
  return static_cast<std::int16_t>(
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[at])) << 8) |
      static_cast<unsigned char>(p[at + 1]));
}

std::int32_t get_i32(std::string_view p, std::size_t at) {
  HSDL_CHECK_MSG(at + 4 <= p.size(), "GDSII: record payload too short");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v = (v << 8) | static_cast<unsigned char>(p[at + static_cast<std::size_t>(i)]);
  return static_cast<std::int32_t>(v);
}

std::uint64_t get_u64(std::string_view p, std::size_t at) {
  HSDL_CHECK_MSG(at + 8 <= p.size(), "GDSII: record payload too short");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v = (v << 8) | static_cast<unsigned char>(p[at + static_cast<std::size_t>(i)]);
  return v;
}

std::string trim_nul(std::string_view s) {
  while (!s.empty() && s.back() == '\0') s.remove_suffix(1);
  return std::string(s);
}

}  // namespace

std::uint64_t to_gds_real(double value) {
  // Excess-64 base-16: bit 63 sign, bits 62-56 exponent (power of 16,
  // biased by 64), bits 55-0 mantissa with the value = mantissa * 16^(e-64),
  // mantissa normalized to [1/16, 1).
  if (value == 0.0) return 0;
  std::uint64_t sign = 0;
  if (value < 0) {
    sign = 1ULL << 63;
    value = -value;
  }
  int exponent = 64;
  while (value >= 1.0) {
    value /= 16.0;
    ++exponent;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exponent;
  }
  HSDL_CHECK_MSG(exponent >= 0 && exponent < 128,
                 "value out of GDSII real range");
  const auto mantissa =
      static_cast<std::uint64_t>(std::ldexp(value, 56));  // value * 2^56
  return sign | (static_cast<std::uint64_t>(exponent) << 56) |
         (mantissa & ((1ULL << 56) - 1));
}

double from_gds_real(std::uint64_t bits) {
  if (bits == 0) return 0.0;
  const bool negative = (bits >> 63) != 0;
  const int exponent = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const double mantissa =
      std::ldexp(static_cast<double>(bits & ((1ULL << 56) - 1)), -56);
  const double value = mantissa * std::pow(16.0, exponent);
  return negative ? -value : value;
}

std::vector<geom::Rect> GdsCell::rects_on_layer(std::int16_t layer) const {
  std::vector<geom::Rect> out;
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    if (layers[i] != layer) continue;
    for (const geom::Rect& r : boundaries[i].decompose()) out.push_back(r);
  }
  return out;
}

void write_gds(std::ostream& os, const GdsLibrary& lib) {
  emit_i16(os, kHeader, 600);  // stream version 6
  emit_timestamps(os, kBgnLib);
  emit_ascii(os, kLibName, lib.name);
  {
    std::string p;
    put_u64(p, to_gds_real(lib.user_unit));
    put_u64(p, to_gds_real(lib.db_unit_meters));
    emit(os, kUnits, kReal8, p);
  }
  for (const GdsCell& cell : lib.cells) {
    HSDL_CHECK(cell.boundaries.size() == cell.layers.size());
    emit_timestamps(os, kBgnStr);
    emit_ascii(os, kStrName, cell.name);
    for (std::size_t i = 0; i < cell.boundaries.size(); ++i) {
      emit(os, kBoundary, kNoData, "");
      emit_i16(os, kLayer, cell.layers[i]);
      emit_i16(os, kDatatype, 0);
      std::string xy;
      const auto& ring = cell.boundaries[i].ring();
      HSDL_CHECK_MSG(!ring.empty(), "empty boundary");
      for (std::size_t v = 0; v <= ring.size(); ++v) {
        const geom::Point& pt = ring[v % ring.size()];  // closed ring
        put_u32(xy, static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(pt.x)));
        put_u32(xy, static_cast<std::uint32_t>(
                        static_cast<std::int32_t>(pt.y)));
      }
      emit(os, kXy, kInt32, xy);
      emit(os, kEndEl, kNoData, "");
    }
    for (const GdsRef& ref : cell.refs) {
      emit(os, kSref, kNoData, "");
      emit_ascii(os, kSname, ref.cell);
      std::string xy;
      put_u32(xy, static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(ref.at.x)));
      put_u32(xy, static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(ref.at.y)));
      emit(os, kXy, kInt32, xy);
      emit(os, kEndEl, kNoData, "");
    }
    emit(os, kEndStr, kNoData, "");
  }
  emit(os, kEndLib, kNoData, "");
  HSDL_CHECK_MSG(os.good(), "GDSII write failed");
}

GdsLibrary read_gds(std::istream& is) {
  const std::string data = io::read_stream(is);
  RecordStream records(data);
  GdsLibrary lib;
  lib.cells.clear();
  Record rec;
  bool saw_header = false, in_struct = false, in_element = false;
  bool element_is_boundary = false;
  bool element_is_sref = false;
  std::int16_t current_layer = 0;
  std::vector<geom::Point> current_ring;
  GdsRef current_ref;

  while (records.next(rec)) {
    switch (rec.type) {
      case kHeader:
        saw_header = true;
        break;
      case kLibName:
        lib.name = trim_nul(rec.payload);
        break;
      case kUnits:
        lib.user_unit = from_gds_real(get_u64(rec.payload, 0));
        lib.db_unit_meters = from_gds_real(get_u64(rec.payload, 8));
        break;
      case kBgnStr:
        if (in_struct) records.fail("nested BGNSTR");
        lib.cells.emplace_back();
        in_struct = true;
        break;
      case kStrName:
        if (!in_struct) records.fail("STRNAME outside structure");
        lib.cells.back().name = trim_nul(rec.payload);
        break;
      case kEndStr:
        if (!in_struct || in_element) records.fail("unbalanced ENDSTR");
        in_struct = false;
        break;
      case kBoundary:
        if (!in_struct || in_element)
          records.fail("BOUNDARY outside structure");
        in_element = true;
        element_is_boundary = true;
        current_layer = 0;
        current_ring.clear();
        break;
      case kSref:
        if (!in_struct || in_element) records.fail("SREF outside structure");
        in_element = true;
        element_is_sref = true;
        current_ref = GdsRef{};
        break;
      case kSname:
        if (in_element && element_is_sref)
          current_ref.cell = trim_nul(rec.payload);
        break;
      case kLayer:
        if (in_element) current_layer = get_i16(rec.payload, 0);
        break;
      case kXy:
        if (in_element && element_is_sref) {
          if (rec.payload.size() < 8) records.fail("SREF without XY");
          current_ref.at = {get_i32(rec.payload, 0),
                            get_i32(rec.payload, 4)};
        }
        if (in_element && element_is_boundary) {
          if (rec.payload.size() % 8 != 0) records.fail("odd XY payload");
          const std::size_t n = rec.payload.size() / 8;
          current_ring.clear();
          for (std::size_t i = 0; i < n; ++i)
            current_ring.push_back(
                {get_i32(rec.payload, i * 8),
                 get_i32(rec.payload, i * 8 + 4)});
          // GDSII repeats the first vertex at the end.
          if (current_ring.size() >= 2 &&
              current_ring.front() == current_ring.back())
            current_ring.pop_back();
        }
        break;
      case kEndEl:
        if (in_element && element_is_sref) {
          if (current_ref.cell.empty()) records.fail("SREF without SNAME");
          lib.cells.back().refs.push_back(current_ref);
        }
        if (in_element && element_is_boundary) {
          if (!geom::is_rectilinear_ring(current_ring))
            records.fail("non-rectilinear boundary (unsupported subset)");
          lib.cells.back().boundaries.emplace_back(current_ring);
          lib.cells.back().layers.push_back(current_layer);
        }
        in_element = false;
        element_is_boundary = false;
        element_is_sref = false;
        break;
      case kEndLib:
        if (!saw_header) records.fail("ENDLIB before HEADER");
        records.expect_only_padding();
        return lib;
      default:
        break;  // skip unsupported records (TEXT, properties, ...)
    }
  }
  records.fail("stream ended without ENDLIB");
}

void write_gds_file(const std::string& path, const GdsLibrary& lib) {
  std::ofstream os(path, std::ios::binary);
  HSDL_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  write_gds(os, lib);
}

GdsLibrary read_gds_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HSDL_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return read_gds(is);
}

namespace {

const GdsCell* find_cell(const GdsLibrary& lib, const std::string& name) {
  for (const GdsCell& cell : lib.cells)
    if (cell.name == name) return &cell;
  return nullptr;
}

void flatten_into(const GdsLibrary& lib, const std::string& name,
                  std::int16_t layer, geom::Point offset, std::size_t depth,
                  std::vector<geom::Rect>& out) {
  HSDL_CHECK_MSG(depth < 64, "GDSII: reference cycle or absurd hierarchy "
                             "depth at cell '" << name << "'");
  const GdsCell* cell = find_cell(lib, name);
  HSDL_CHECK_MSG(cell != nullptr, "GDSII: unknown cell '" << name << "'");
  for (const geom::Rect& r : cell->rects_on_layer(layer))
    out.push_back(r.shifted(offset));
  for (const GdsRef& ref : cell->refs)
    flatten_into(lib, ref.cell, layer, offset + ref.at, depth + 1, out);
}

}  // namespace

std::vector<geom::Rect> flatten_cell(const GdsLibrary& lib,
                                     const std::string& cell_name,
                                     std::int16_t layer) {
  std::vector<geom::Rect> out;
  flatten_into(lib, cell_name, layer, {0, 0}, 0, out);
  return out;
}

GdsLibrary clip_to_gds(const Clip& clip, std::int16_t layer,
                       const std::string& cell_name) {
  GdsLibrary lib;
  GdsCell cell;
  cell.name = cell_name;
  for (const geom::Rect& r : clip.shapes) {
    cell.boundaries.push_back(geom::Polygon::from_rect(r));
    cell.layers.push_back(layer);
  }
  lib.cells.push_back(std::move(cell));
  return lib;
}

Clip gds_to_clip(const GdsLibrary& lib, std::int16_t layer) {
  HSDL_CHECK_MSG(!lib.cells.empty(), "GDSII library has no cells");
  Clip clip;
  clip.shapes = lib.cells.front().rects_on_layer(layer);
  geom::Rect bbox;
  for (const geom::Rect& r : clip.shapes) bbox = bbox.bbox_union(r);
  clip.window = bbox;
  return clip;
}

}  // namespace hsdl::layout

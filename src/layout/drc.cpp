#include "layout/drc.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hsdl::layout {

const char* to_string(DrcViolationType type) {
  switch (type) {
    case DrcViolationType::kMinWidth:
      return "min-width";
    case DrcViolationType::kMinSpacing:
      return "min-spacing";
    case DrcViolationType::kOffGrid:
      return "off-grid";
  }
  return "?";
}

std::size_t DrcReport::count(DrcViolationType type) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [type](const DrcViolation& v) { return v.type == type; }));
}

DrcReport check_rules(const Clip& clip, const DesignRules& rules) {
  HSDL_CHECK(rules.grid > 0);
  DrcReport report;

  for (const geom::Rect& r : clip.shapes) {
    if (r.empty()) continue;
    // Width rule: the smaller dimension of every shape.
    const geom::Coord width = std::min(r.width(), r.height());
    if (width < rules.min_width)
      report.violations.push_back(
          {DrcViolationType::kMinWidth, r, width, rules.min_width});
    // Grid rule: every edge on the manufacturing grid.
    const bool off_grid = r.lo.x % rules.grid != 0 ||
                          r.lo.y % rules.grid != 0 ||
                          r.hi.x % rules.grid != 0 ||
                          r.hi.y % rules.grid != 0;
    if (off_grid)
      report.violations.push_back(
          {DrcViolationType::kOffGrid, r, 0, rules.grid});
  }

  // Spacing rule: pairwise on disjoint shapes. Clip shape counts are small
  // (tens), so the quadratic scan is fine; chip-scale checks should go
  // through geom::RectIndex instead.
  for (std::size_t i = 0; i < clip.shapes.size(); ++i) {
    for (std::size_t j = i + 1; j < clip.shapes.size(); ++j) {
      const geom::Rect& a = clip.shapes[i];
      const geom::Rect& b = clip.shapes[j];
      if (a.empty() || b.empty()) continue;
      if (a.overlaps(b)) continue;  // connected metal, no spacing rule
      const geom::Coord gap = geom::rect_spacing(a, b);
      if (gap > 0 && gap < rules.min_space) {
        // Report the gap region between the two bounding boxes.
        report.violations.push_back({DrcViolationType::kMinSpacing,
                                     a.bbox_union(b), gap,
                                     rules.min_space});
      }
    }
  }
  return report;
}

}  // namespace hsdl::layout

#include "layout/layout.hpp"

#include "common/check.hpp"

namespace hsdl::layout {

Layout::Layout(const geom::Rect& extent, std::vector<geom::Rect> shapes)
    : extent_(extent), shapes_(std::move(shapes)) {
  HSDL_CHECK(!extent.empty());
  // Bin size ~1/32 of the extent keeps queries local for typical designs.
  const geom::Coord bin =
      std::max<geom::Coord>(extent.width() / 32, 64);
  index_ = std::make_unique<geom::RectIndex>(extent, bin);
  for (const geom::Rect& r : shapes_) {
    HSDL_CHECK_MSG(extent.contains(r),
                   "shape escapes the layout extent");
    index_->insert(r);
  }
}

Clip Layout::extract_clip(const geom::Rect& window) const {
  HSDL_CHECK(!window.empty());
  Clip clip;
  clip.window = window;
  for (const geom::Rect& r : index_->query(window)) {
    const geom::Rect cut = r.intersect(window);
    if (!cut.empty()) clip.shapes.push_back(cut);
  }
  return clip;
}

double Layout::density() const {
  if (shapes_.empty()) return 0.0;
  return static_cast<double>(geom::union_area(shapes_)) /
         static_cast<double>(extent_.area());
}

Layout generate_chip(geom::Coord width, geom::Coord height,
                     const GeneratorConfig& config, std::uint64_t seed) {
  HSDL_CHECK(width > 0 && height > 0);
  HSDL_CHECK_MSG(width % config.clip_size == 0 &&
                     height % config.clip_size == 0,
                 "chip dimensions must be multiples of the tile size");
  ClipGenerator gen(config, seed);
  std::vector<geom::Rect> shapes;
  for (geom::Coord y = 0; y < height; y += config.clip_size) {
    for (geom::Coord x = 0; x < width; x += config.clip_size) {
      const Clip tile = gen.generate();
      for (const geom::Rect& r : tile.shapes)
        shapes.push_back(r.shifted({x, y}));
    }
  }
  return Layout(geom::Rect::from_xywh(0, 0, width, height),
                std::move(shapes));
}

}  // namespace hsdl::layout

#include "layout/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace hsdl::layout {

const char* to_string(HotspotLabel label) {
  switch (label) {
    case HotspotLabel::kUnknown:
      return "none";
    case HotspotLabel::kNonHotspot:
      return "non-hotspot";
    case HotspotLabel::kHotspot:
      return "hotspot";
  }
  return "?";
}

std::size_t count_hotspots(std::span<const LabeledClip> clips) {
  return static_cast<std::size_t>(
      std::count_if(clips.begin(), clips.end(), [](const LabeledClip& c) {
        return c.label == HotspotLabel::kHotspot;
      }));
}

std::size_t BenchmarkData::train_hotspots() const {
  return count_hotspots(train);
}
std::size_t BenchmarkData::train_non_hotspots() const {
  return train.size() - count_hotspots(train);
}
std::size_t BenchmarkData::test_hotspots() const {
  return count_hotspots(test);
}
std::size_t BenchmarkData::test_non_hotspots() const {
  return test.size() - count_hotspots(test);
}

void split_validation(std::span<const LabeledClip> all, double val_fraction,
                      Rng& rng, std::vector<LabeledClip>& train_out,
                      std::vector<LabeledClip>& val_out) {
  HSDL_CHECK(val_fraction >= 0.0 && val_fraction < 1.0);
  std::vector<std::size_t> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto n_val = static_cast<std::size_t>(
      static_cast<double>(all.size()) * val_fraction);
  train_out.clear();
  val_out.clear();
  train_out.reserve(all.size() - n_val);
  val_out.reserve(n_val);
  for (std::size_t i = 0; i < order.size(); ++i)
    (i < n_val ? val_out : train_out).push_back(all[order[i]]);
}

}  // namespace hsdl::layout

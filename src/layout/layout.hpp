// Full-layout model: a chip-scale shape collection with windowed clip
// extraction — the substrate for full-chip hotspot scanning, which is the
// deployment mode the paper motivates (ML detection instead of full-chip
// lithography simulation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/region.hpp"
#include "layout/clip.hpp"
#include "layout/generator.hpp"

namespace hsdl::layout {

class Layout {
 public:
  /// Takes ownership of `shapes`; `extent` must cover them.
  Layout(const geom::Rect& extent, std::vector<geom::Rect> shapes);

  const geom::Rect& extent() const { return extent_; }
  const std::vector<geom::Rect>& shapes() const { return shapes_; }
  std::size_t shape_count() const { return shapes_.size(); }

  /// Cuts the clip under `window`: all shapes intersecting it, clipped to
  /// the window. O(local shape count) via the internal spatial index.
  Clip extract_clip(const geom::Rect& window) const;

  /// Fraction of the extent covered by shapes.
  double density() const;

 private:
  geom::Rect extent_;
  std::vector<geom::Rect> shapes_;
  std::unique_ptr<geom::RectIndex> index_;
};

/// Generates a chip-scale layout by tiling archetype-filled blocks of
/// `config.clip_size` over a width x height nm area (both must be
/// multiples of the clip size). Deterministic by seed.
Layout generate_chip(geom::Coord width, geom::Coord height,
                     const GeneratorConfig& config, std::uint64_t seed);

}  // namespace hsdl::layout

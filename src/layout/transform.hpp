// Dihedral (square-symmetry) transforms of clips.
//
// The lithographic imaging model is isotropic (Gaussian PSF) and the
// defect rules are orientation-free, so a clip's hotspot label is
// invariant under the 8 symmetries of its square window. The detector
// uses this to augment the scarce hotspot class during training.
#pragma once

#include <array>

#include "layout/clip.hpp"

namespace hsdl::layout {

enum class Dihedral {
  kIdentity,
  kRot90,   ///< 90 degrees counter-clockwise
  kRot180,
  kRot270,
  kFlipX,       ///< mirror across the vertical axis
  kFlipY,       ///< mirror across the horizontal axis
  kTranspose,   ///< mirror across the main diagonal
  kAntiTranspose,
};

inline constexpr std::array<Dihedral, 8> kAllDihedral = {
    Dihedral::kIdentity,  Dihedral::kRot90,  Dihedral::kRot180,
    Dihedral::kRot270,    Dihedral::kFlipX,  Dihedral::kFlipY,
    Dihedral::kTranspose, Dihedral::kAntiTranspose};

/// Applies a square symmetry to a clip. Requires a square window; the
/// result is normalized to the origin.
Clip transformed(const Clip& clip, Dihedral op);

}  // namespace hsdl::layout

#include "layout/gds_stream.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/io.hpp"
#include "geom/polygon.hpp"

namespace hsdl::layout {
namespace {

// Record types (subset — must match layout/gdsii.cpp).
enum : std::uint8_t {
  kHeader = 0x00,
  kBgnLib = 0x01,
  kLibName = 0x02,
  kUnits = 0x03,
  kEndLib = 0x04,
  kBgnStr = 0x05,
  kStrName = 0x06,
  kEndStr = 0x07,
  kBoundary = 0x08,
  kSref = 0x0A,
  kAref = 0x0B,
  kLayer = 0x0D,
  kDatatype = 0x0E,
  kXy = 0x10,
  kEndEl = 0x11,
  kSname = 0x12,
  kColRow = 0x13,
};

constexpr std::size_t kMaxHierDepth = 64;
constexpr std::int64_t kMaxFlattenInstances = 1 << 24;

/// FNV-1a 64 accumulator for cell content hashes. Not cryptographic:
/// the scan cache assumes non-adversarial inputs (a deliberate hash
/// collision between two cells could alias their cached scores).
struct Fnv64 {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void mix_coord(geom::Coord c) { mix(static_cast<std::uint64_t>(c)); }
};

/// Forward-only record cursor over a std::istream: 4-byte tag/len
/// header, payload into one reused bounded buffer. Never reads ahead of
/// the current record, never buffers the file.
class StreamRecordReader {
 public:
  StreamRecordReader(std::istream& is, const GdsReadOptions& options)
      : is_(is), max_record_bytes_(options.max_record_bytes) {
    buf_.reserve(max_record_bytes_);
  }

  struct Record {
    std::uint8_t type = 0;
    std::uint8_t dtype = 0;
    std::string_view payload;
  };

  /// Frames the next record; false at clean end-of-stream.
  bool next(Record& rec) {
    record_start_ = offset_;
    unsigned char hdr[4];
    is_.read(reinterpret_cast<char*>(hdr), 4);
    const std::streamsize got = is_.gcount();
    if (got == 0) return false;
    if (got < 4) fail_at(record_start_, "truncated record header");
    offset_ += 4;
    const std::size_t len =
        (static_cast<std::size_t>(hdr[0]) << 8) | hdr[1];
    rec.type = hdr[2];
    rec.dtype = hdr[3];
    if (len < 4) fail_at(record_start_, "record length below header size");
    if (len > max_record_bytes_)
      fail_at(record_start_,
              "record length " + std::to_string(len) + " exceeds the " +
                  std::to_string(max_record_bytes_) + "-byte record bound");
    buf_.resize(len - 4);
    if (len > 4) {
      is_.read(buf_.data(), static_cast<std::streamsize>(len - 4));
      if (static_cast<std::size_t>(is_.gcount()) < len - 4)
        fail_at(record_start_, "truncated record payload");
      offset_ += len - 4;
    }
    rec.payload = std::string_view(buf_.data(), buf_.size());
    ++index_;
    return true;
  }

  /// Trailing bytes after ENDLIB must be NUL tape padding only.
  void expect_only_padding() {
    char c;
    while (is_.read(&c, 1), is_.gcount() == 1) {
      if (c != '\0') fail("non-padding trailing data after ENDLIB");
      ++offset_;
    }
  }

  std::uint64_t offset() const { return offset_; }

  [[noreturn]] void fail(const std::string& msg) const {
    fail_at(offset_, msg);
  }

 private:
  [[noreturn]] void fail_at(std::uint64_t at, const std::string& msg) const {
    throw io::IoError(msg + " (record #" + std::to_string(index_) + ")", at,
                      "GDSII");
  }

  std::istream& is_;
  std::size_t max_record_bytes_;
  std::string buf_;
  std::uint64_t offset_ = 0;
  std::uint64_t record_start_ = 0;
  std::size_t index_ = 0;
};

std::string trim_nul(std::string_view s) {
  while (!s.empty() && s.back() == '\0') s.remove_suffix(1);
  return std::string(s);
}

/// Decodes a boundary XY payload into a ring via the shared
/// bounds-checked big-endian codecs.
std::vector<geom::Point> decode_ring(std::string_view payload,
                                     StreamRecordReader& records) {
  if (payload.size() % 8 != 0) records.fail("odd XY payload");
  io::ByteReader r(payload, "GDSII");
  std::vector<geom::Point> ring;
  ring.reserve(payload.size() / 8);
  while (!r.at_end()) {
    const geom::Coord x = r.i32_be();
    const geom::Coord y = r.i32_be();
    ring.push_back({x, y});
  }
  // GDSII repeats the first vertex at the end.
  if (ring.size() >= 2 && ring.front() == ring.back()) ring.pop_back();
  return ring;
}

}  // namespace

std::uint64_t HierLayout::fingerprint() const { return fingerprint_; }

void HierLayout::finalize(const std::string& library_name,
                          std::vector<std::vector<GdsRef>>&& raw_refs) {
  HSDL_CHECK_MSG(!cells_.empty(), "GDSII: hierarchy has no cells");
  HSDL_CHECK(raw_refs.size() == cells_.size());

  // Name index (duplicates and anonymous cells are structural errors).
  std::unordered_map<std::string_view, std::size_t> index;
  index.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    HSDL_CHECK_MSG(!cells_[i].name.empty(),
                   "GDSII: cell #" << i << " has no STRNAME");
    const bool fresh = index.emplace(cells_[i].name, i).second;
    HSDL_CHECK_MSG(fresh, "GDSII: duplicate cell name '" << cells_[i].name
                                                         << "'");
  }

  // Resolve references; normalize repetition to non-negative pitches.
  std::vector<bool> referenced(cells_.size(), false);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].placements.clear();
    cells_[i].placements.reserve(raw_refs[i].size());
    for (GdsRef ref : raw_refs[i]) {
      const auto it = index.find(ref.cell);
      HSDL_CHECK_MSG(it != index.end(), "GDSII: cell '"
                                            << cells_[i].name
                                            << "' references unknown cell '"
                                            << ref.cell << "'");
      HSDL_CHECK_MSG(ref.cols >= 1 && ref.rows >= 1,
                     "GDSII: non-positive repetition referencing '"
                         << ref.cell << "'");
      HSDL_CHECK_MSG((ref.cols == 1 || ref.col_pitch != 0) &&
                         (ref.rows == 1 || ref.row_pitch != 0),
                     "GDSII: zero-pitch repetition referencing '"
                         << ref.cell << "'");
      if (ref.col_pitch < 0) {
        ref.at.x += (ref.cols - 1) * ref.col_pitch;
        ref.col_pitch = -ref.col_pitch;
      }
      if (ref.row_pitch < 0) {
        ref.at.y += (ref.rows - 1) * ref.row_pitch;
        ref.row_pitch = -ref.row_pitch;
      }
      HierPlacement p;
      p.cell = static_cast<std::uint32_t>(it->second);
      p.at = ref.at;
      p.cols = ref.cols;
      p.rows = ref.rows;
      p.col_pitch = ref.col_pitch;
      p.row_pitch = ref.row_pitch;
      cells_[i].placements.push_back(p);
      referenced[it->second] = true;
    }
  }

  // Post-order over the reference DAG: subtree bbox + content hash for
  // every cell, with explicit cycle detection (0 = new, 1 = on the
  // current path, 2 = done) — no recursion, so adversarially deep
  // chains cannot blow the native stack.
  std::vector<int> state(cells_.size(), 0);
  for (std::size_t root = 0; root < cells_.size(); ++root) {
    if (state[root] == 2) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // cell, child
    stack.emplace_back(root, 0);
    state[root] = 1;
    while (!stack.empty()) {
      auto& [c, next_child] = stack.back();
      HierCell& cell = cells_[c];
      if (next_child < cell.placements.size()) {
        const std::size_t child = cell.placements[next_child++].cell;
        HSDL_CHECK_MSG(state[child] != 1,
                       "GDSII: reference cycle involving cell '"
                           << cells_[child].name << "'");
        if (state[child] == 0) {
          state[child] = 1;
          stack.emplace_back(child, 0);
        }
        continue;
      }
      // All children done: fold this cell.
      geom::Rect bbox;
      Fnv64 hash;
      hash.mix(0x5348);  // shape-section tag
      HSDL_CHECK(cell.shapes.size() == cell.layers.size());
      for (std::size_t s = 0; s < cell.shapes.size(); ++s) {
        bbox = bbox.bbox_union(cell.shapes[s]);
        hash.mix(static_cast<std::uint64_t>(
            static_cast<std::uint16_t>(cell.layers[s])));
        hash.mix_coord(cell.shapes[s].lo.x);
        hash.mix_coord(cell.shapes[s].lo.y);
        hash.mix_coord(cell.shapes[s].hi.x);
        hash.mix_coord(cell.shapes[s].hi.y);
      }
      hash.mix(0x5245);  // placement-section tag
      for (const HierPlacement& p : cell.placements) {
        const HierCell& child = cells_[p.cell];
        if (!child.bbox.empty()) {
          geom::Rect pb = child.bbox.shifted(p.at);
          pb.hi.x += (p.cols - 1) * p.col_pitch;
          pb.hi.y += (p.rows - 1) * p.row_pitch;
          bbox = bbox.bbox_union(pb);
        }
        hash.mix(child.content_hash);
        hash.mix_coord(p.at.x);
        hash.mix_coord(p.at.y);
        hash.mix(static_cast<std::uint64_t>(p.cols));
        hash.mix(static_cast<std::uint64_t>(p.rows));
        hash.mix_coord(p.col_pitch);
        hash.mix_coord(p.row_pitch);
      }
      cell.bbox = bbox;
      cell.content_hash = hash.h;
      state[c] = 2;
      stack.pop_back();
    }
  }

  // Top cell: the unique cell no placement references.
  std::size_t top = cells_.size();
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (referenced[i]) continue;
    HSDL_CHECK_MSG(top == cells_.size(),
                   "GDSII: no unique top cell (both '"
                       << cells_[std::min(top, cells_.size() - 1)].name
                       << "' and '" << cells_[i].name
                       << "' are unreferenced)");
    top = i;
  }
  HSDL_CHECK_MSG(top < cells_.size(),
                 "GDSII: no top cell (every cell is referenced — cycle)");
  top_ = top;
  HSDL_CHECK_MSG(!cells_[top_].bbox.empty(),
                 "GDSII: top cell '" << cells_[top_].name
                                     << "' has no geometry to scan");

  Fnv64 fp;
  for (char ch : library_name) fp.mix(static_cast<unsigned char>(ch));
  fp.mix(cells_[top_].content_hash);
  fp.mix_coord(cells_[top_].bbox.lo.x);
  fp.mix_coord(cells_[top_].bbox.lo.y);
  fingerprint_ = fp.h;
}

void HierLayout::query(const geom::Rect& window, std::int16_t layer,
                       std::vector<geom::Rect>& out) const {
  HSDL_CHECK(!window.empty());
  query_cell(top_, {0, 0}, window, layer, out, 0);
}

void HierLayout::query_cell(std::size_t cell_index, geom::Point offset,
                            const geom::Rect& window, std::int16_t layer,
                            std::vector<geom::Rect>& out,
                            std::size_t depth) const {
  HSDL_CHECK_MSG(depth < kMaxHierDepth, "GDSII: hierarchy deeper than "
                                            << kMaxHierDepth);
  const HierCell& cell = cells_[cell_index];
  for (std::size_t i = 0; i < cell.shapes.size(); ++i) {
    if (cell.layers[i] != layer) continue;
    const geom::Rect cut = cell.shapes[i].shifted(offset).intersect(window);
    if (!cut.empty()) out.push_back(cut);
  }
  for (const HierPlacement& p : cell.placements) {
    const geom::Rect& cb = cells_[p.cell].bbox;
    if (cb.empty()) continue;
    const geom::Point base = offset + p.at;
    // Array index ranges whose instance bbox interior intersects the
    // window: i*pitch must satisfy
    //   window.lo < cb.hi + base + i*pitch  and  cb.lo + base + i*pitch
    //   < window.hi   (per axis, strict — matching Rect::overlaps).
    std::int32_t i_lo = 0, i_hi = p.cols - 1;
    if (p.cols > 1) {
      i_lo = static_cast<std::int32_t>(std::max<geom::Coord>(
          0, geom::floor_div(window.lo.x - base.x - cb.hi.x, p.col_pitch) +
                 1));
      i_hi = static_cast<std::int32_t>(std::min<geom::Coord>(
          p.cols - 1,
          geom::floor_div(window.hi.x - base.x - cb.lo.x - 1, p.col_pitch)));
    } else if (base.x + cb.lo.x >= window.hi.x ||
               base.x + cb.hi.x <= window.lo.x) {
      continue;
    }
    std::int32_t j_lo = 0, j_hi = p.rows - 1;
    if (p.rows > 1) {
      j_lo = static_cast<std::int32_t>(std::max<geom::Coord>(
          0, geom::floor_div(window.lo.y - base.y - cb.hi.y, p.row_pitch) +
                 1));
      j_hi = static_cast<std::int32_t>(std::min<geom::Coord>(
          p.rows - 1,
          geom::floor_div(window.hi.y - base.y - cb.lo.y - 1, p.row_pitch)));
    } else if (base.y + cb.lo.y >= window.hi.y ||
               base.y + cb.hi.y <= window.lo.y) {
      continue;
    }
    if (i_lo > i_hi || j_lo > j_hi) continue;
    for (std::int32_t j = j_lo; j <= j_hi; ++j)
      for (std::int32_t i = i_lo; i <= i_hi; ++i)
        query_cell(p.cell, p.origin(i, j) + offset, window, layer, out,
                   depth + 1);
  }
}

namespace {

void flatten_rec(const std::vector<HierCell>& cells, std::size_t cell_index,
                 geom::Point offset, std::int16_t layer,
                 std::vector<geom::Rect>& out, std::int64_t& instances,
                 std::size_t depth) {
  HSDL_CHECK_MSG(depth < kMaxHierDepth, "GDSII: hierarchy deeper than "
                                            << kMaxHierDepth);
  const HierCell& cell = cells[cell_index];
  for (std::size_t i = 0; i < cell.shapes.size(); ++i)
    if (cell.layers[i] == layer)
      out.push_back(cell.shapes[i].shifted(offset));
  for (const HierPlacement& p : cell.placements) {
    instances += p.instances();
    HSDL_CHECK_MSG(instances <= kMaxFlattenInstances,
                   "GDSII: flattening '" << cell.name << "' expands past "
                                         << kMaxFlattenInstances
                                         << " placements");
    for (std::int32_t j = 0; j < p.rows; ++j)
      for (std::int32_t i = 0; i < p.cols; ++i)
        flatten_rec(cells, p.cell, p.origin(i, j) + offset, layer, out,
                    instances, depth + 1);
  }
}

}  // namespace

std::vector<geom::Rect> HierLayout::flatten(std::int16_t layer) const {
  std::vector<geom::Rect> out;
  std::int64_t instances = 0;
  flatten_rec(cells_, top_, {0, 0}, layer, out, instances, 0);
  return out;
}

std::int64_t HierLayout::flat_instance_count() const {
  // Per-cell memoized: instances in the subtree below a cell, counting
  // each placement element once. Saturates instead of overflowing —
  // the count is informational (bench reporting).
  std::vector<double> memo(cells_.size(), -1.0);
  // Cells were finalized in post-order-compatible state; recompute with
  // an explicit stack to stay recursion-free.
  std::vector<std::size_t> order;
  order.reserve(cells_.size());
  {
    std::vector<std::pair<std::size_t, std::size_t>> stack{{top_, 0}};
    std::vector<bool> seen(cells_.size(), false);
    seen[top_] = true;
    while (!stack.empty()) {
      auto& [c, next] = stack.back();
      if (next < cells_[c].placements.size()) {
        const std::size_t child = cells_[c].placements[next++].cell;
        if (!seen[child]) {
          seen[child] = true;
          stack.emplace_back(child, 0);
        }
        continue;
      }
      order.push_back(c);
      stack.pop_back();
    }
  }
  for (std::size_t c : order) {
    double below = 0.0;
    for (const HierPlacement& p : cells_[c].placements)
      below += static_cast<double>(p.instances()) *
               (1.0 + std::max(0.0, memo[p.cell]));
    memo[c] = below;
  }
  const double total = memo[top_];
  const double cap =
      static_cast<double>(std::numeric_limits<std::int64_t>::max() / 2);
  return static_cast<std::int64_t>(std::min(total, cap));
}

std::vector<std::int16_t> HierLayout::present_layers() const {
  std::set<std::int16_t> layers;
  for (const HierCell& cell : cells_)
    layers.insert(cell.layers.begin(), cell.layers.end());
  return {layers.begin(), layers.end()};
}

void HierLayout::collapse(const std::string& library_name) {
  HierCell top;
  top.name = cells_[top_].name;
  for (std::int16_t layer : present_layers()) {
    for (const geom::Rect& r : flatten(layer)) {
      top.shapes.push_back(r);
      top.layers.push_back(layer);
    }
  }
  cells_.clear();
  cells_.push_back(std::move(top));
  top_ = 0;
  finalize(library_name, {{}});
}

HierLayout read_hier_gds(std::istream& is, const GdsReadOptions& options) {
  options.validate();
  StreamRecordReader records(is, options);
  HierLayout hier;
  std::vector<std::vector<GdsRef>> raw_refs;
  std::string lib_name = "HSDL";

  StreamRecordReader::Record rec;
  bool saw_header = false, in_struct = false, in_element = false;
  bool element_is_boundary = false;
  bool element_is_ref = false;
  bool element_is_aref = false;
  bool have_colrow = false;
  std::int16_t current_layer = 0;
  std::vector<geom::Point> current_ring;
  std::string aref_xy;
  GdsRef current_ref;

  const auto payload_i16 = [&](std::string_view p) {
    io::ByteReader r(p, "GDSII");
    return r.i16_be();
  };

  while (records.next(rec)) {
    switch (rec.type) {
      case kHeader:
        saw_header = true;
        break;
      case kLibName:
        lib_name = trim_nul(rec.payload);
        break;
      case kBgnLib:
      case kUnits:
      case kDatatype:
        break;  // geometry is consumed in integer database units
      case kBgnStr:
        if (in_struct) records.fail("nested BGNSTR");
        hier.cells_.emplace_back();
        raw_refs.emplace_back();
        in_struct = true;
        break;
      case kStrName:
        if (!in_struct) records.fail("STRNAME outside structure");
        hier.cells_.back().name = trim_nul(rec.payload);
        break;
      case kEndStr:
        if (!in_struct || in_element) records.fail("unbalanced ENDSTR");
        in_struct = false;
        break;
      case kBoundary:
        if (!in_struct || in_element)
          records.fail("BOUNDARY outside structure");
        in_element = true;
        element_is_boundary = true;
        current_layer = 0;
        current_ring.clear();
        break;
      case kSref:
      case kAref:
        if (!in_struct || in_element)
          records.fail(rec.type == kAref ? "AREF outside structure"
                                         : "SREF outside structure");
        in_element = true;
        element_is_ref = true;
        element_is_aref = rec.type == kAref;
        have_colrow = false;
        aref_xy.clear();
        current_ref = GdsRef{};
        break;
      case kSname:
        if (in_element && element_is_ref)
          current_ref.cell = trim_nul(rec.payload);
        break;
      case kColRow:
        if (in_element && element_is_aref) {
          if (rec.payload.size() < 4) records.fail("short COLROW payload");
          io::ByteReader r(rec.payload, "GDSII");
          current_ref.cols = r.i16_be();
          current_ref.rows = r.i16_be();
          if (current_ref.cols < 1 || current_ref.rows < 1)
            records.fail("non-positive COLROW repetition");
          have_colrow = true;
        }
        break;
      case kLayer:
        if (in_element) current_layer = payload_i16(rec.payload);
        break;
      case kXy:
        if (in_element && element_is_ref) {
          if (element_is_aref) {
            aref_xy.assign(rec.payload);
          } else {
            if (rec.payload.size() < 8) records.fail("SREF without XY");
            io::ByteReader r(rec.payload, "GDSII");
            current_ref.at.x = r.i32_be();
            current_ref.at.y = r.i32_be();
          }
        }
        if (in_element && element_is_boundary)
          current_ring = decode_ring(rec.payload, records);
        break;
      case kEndEl:
        if (in_element && element_is_ref) {
          if (current_ref.cell.empty()) records.fail("SREF without SNAME");
          if (element_is_aref) {
            if (!have_colrow) records.fail("AREF without COLROW");
            if (aref_xy.size() != 24)
              records.fail("AREF XY must hold exactly 3 points");
            io::ByteReader r(aref_xy, "GDSII");
            const geom::Point origin{r.i32_be(), r.i32_be()};
            const geom::Point col_ref{r.i32_be(), r.i32_be()};
            const geom::Point row_ref{r.i32_be(), r.i32_be()};
            if (col_ref.y != origin.y || row_ref.x != origin.x)
              records.fail("rotated or sheared AREF (unsupported subset)");
            const geom::Coord col_span = col_ref.x - origin.x;
            const geom::Coord row_span = row_ref.y - origin.y;
            if (col_span % current_ref.cols != 0 ||
                row_span % current_ref.rows != 0)
              records.fail("AREF span not divisible by its COLROW counts");
            current_ref.at = origin;
            current_ref.col_pitch = col_span / current_ref.cols;
            current_ref.row_pitch = row_span / current_ref.rows;
            if ((current_ref.cols > 1 && current_ref.col_pitch == 0) ||
                (current_ref.rows > 1 && current_ref.row_pitch == 0))
              records.fail("zero-pitch AREF repetition");
          }
          raw_refs.back().push_back(current_ref);
        }
        if (in_element && element_is_boundary) {
          if (!geom::is_rectilinear_ring(current_ring))
            records.fail("non-rectilinear boundary (unsupported subset)");
          if (options.layer_filter < 0 ||
              current_layer == options.layer_filter) {
            HierCell& cell = hier.cells_.back();
            for (const geom::Rect& r :
                 geom::Polygon(current_ring).decompose()) {
              cell.shapes.push_back(r);
              cell.layers.push_back(current_layer);
            }
          }
        }
        in_element = false;
        element_is_boundary = false;
        element_is_ref = false;
        element_is_aref = false;
        break;
      case kEndLib:
        if (!saw_header) records.fail("ENDLIB before HEADER");
        if (in_struct) records.fail("ENDLIB inside structure");
        records.expect_only_padding();
        hier.finalize(lib_name, std::move(raw_refs));
        if (!options.keep_hierarchy) hier.collapse(lib_name);
        return hier;
      default:
        if (!options.skip_unknown)
          records.fail("unknown record type " +
                       std::to_string(static_cast<int>(rec.type)) +
                       " with skip_unknown disabled");
        break;
    }
  }
  records.fail("stream ended without ENDLIB");
}

HierLayout read_hier_gds_file(const std::string& path,
                              const GdsReadOptions& options) {
  std::ifstream is(path, std::ios::binary);
  HSDL_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return read_hier_gds(is, options);
}

HierLayout hier_from_library(const GdsLibrary& lib,
                             const GdsReadOptions& options) {
  options.validate();
  HierLayout hier;
  std::vector<std::vector<GdsRef>> raw_refs;
  for (const GdsCell& cell : lib.cells) {
    HierCell hc;
    hc.name = cell.name;
    HSDL_CHECK(cell.boundaries.size() == cell.layers.size());
    for (std::size_t i = 0; i < cell.boundaries.size(); ++i) {
      if (options.layer_filter >= 0 &&
          cell.layers[i] != options.layer_filter)
        continue;
      for (const geom::Rect& r : cell.boundaries[i].decompose()) {
        hc.shapes.push_back(r);
        hc.layers.push_back(cell.layers[i]);
      }
    }
    hier.cells_.push_back(std::move(hc));
    raw_refs.push_back(cell.refs);
  }
  hier.finalize(lib.name, std::move(raw_refs));
  if (!options.keep_hierarchy) hier.collapse(lib.name);
  return hier;
}

}  // namespace hsdl::layout

// GDSII stream-format subset reader/writer.
//
// GDSII is the interchange format the original benchmarks ship in. This
// implements the subset needed for flat single-layer mask data:
//   HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR, STRNAME,
//   BOUNDARY / LAYER / DATATYPE / XY / ENDEL, ENDSTR, ENDLIB
// Records are big-endian; UNITS uses GDSII's excess-64 base-16 8-byte
// reals (converters exposed for testing). Boundaries are rectilinear
// polygons; on read they are decomposed into rectangles via the geometry
// kernel. Unknown records are skipped, so files from real tools load as
// long as their geometry is rectilinear BOUNDARY data.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/polygon.hpp"
#include "layout/clip.hpp"

namespace hsdl::layout {

/// Structure reference (SREF): a translated placement of another cell.
/// Rotation/magnification are outside the supported subset.
struct GdsRef {
  std::string cell;
  geom::Point at;
};

struct GdsCell {
  std::string name;
  std::vector<geom::Polygon> boundaries;
  std::vector<std::int16_t> layers;  ///< parallel to boundaries
  std::vector<GdsRef> refs;

  /// All boundaries on `layer`, decomposed into rectangles (refs are not
  /// resolved — see flatten_cell).
  std::vector<geom::Rect> rects_on_layer(std::int16_t layer) const;
};

struct GdsLibrary {
  std::string name = "HSDL";
  /// Database unit in meters (1e-9 = 1 nm, this library's convention).
  double db_unit_meters = 1e-9;
  /// User unit in database units (GDSII UNITS first field).
  double user_unit = 1e-3;
  std::vector<GdsCell> cells;
};

/// Serializes a library. Boundaries must be rectilinear polygons.
void write_gds(std::ostream& os, const GdsLibrary& lib);
void write_gds_file(const std::string& path, const GdsLibrary& lib);

/// Parses a GDSII stream; throws CheckError on structural errors.
GdsLibrary read_gds(std::istream& is);
GdsLibrary read_gds_file(const std::string& path);

/// Recursively resolves structure references of `cell_name`, returning
/// every boundary rectangle on `layer` in the flattened (top-cell)
/// coordinate frame. Throws on unknown cell names or reference cycles.
std::vector<geom::Rect> flatten_cell(const GdsLibrary& lib,
                                     const std::string& cell_name,
                                     std::int16_t layer);

/// Convenience: one cell holding a clip's shapes on `layer`.
GdsLibrary clip_to_gds(const Clip& clip, std::int16_t layer = 1,
                       const std::string& cell_name = "CLIP");

/// Convenience: rebuilds a clip from the first cell's shapes on `layer`;
/// the window is the bounding box unless `window` is provided.
Clip gds_to_clip(const GdsLibrary& lib, std::int16_t layer = 1);

// -- GDSII 8-byte real conversion (exposed for tests) --
std::uint64_t to_gds_real(double value);
double from_gds_real(std::uint64_t bits);

}  // namespace hsdl::layout

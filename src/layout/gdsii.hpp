// GDSII stream-format subset reader/writer.
//
// GDSII is the interchange format the original benchmarks ship in. This
// implements the subset needed for single-layer mask data with cell
// hierarchy:
//   HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR, STRNAME,
//   BOUNDARY / LAYER / DATATYPE / XY / ENDEL,
//   SREF / AREF / SNAME / COLROW, ENDSTR, ENDLIB
// Records are big-endian; UNITS uses GDSII's excess-64 base-16 8-byte
// reals (converters exposed for testing). Boundaries are rectilinear
// polygons; on read they are decomposed into rectangles via the geometry
// kernel. AREF arrays must be axis-aligned (no rotation/magnification —
// outside the supported subset).
//
// This header is the in-memory DOM view (`GdsLibrary`): the whole file
// is parsed into cells that can be edited and written back. For
// chip-scale inputs that must not be expanded in RAM, use the streaming
// reader in layout/gds_stream.hpp, which shares `GdsReadOptions` and the
// record grammar but keeps hierarchy unexpanded (DESIGN.md §16).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/polygon.hpp"
#include "layout/clip.hpp"

namespace hsdl::layout {

/// Read-time policy for both GDSII readers (`read_gds` and the
/// streaming `read_hier_gds`). Replaces the implicit behaviors of the
/// original reader (silent unknown-record skipping, unbounded record
/// sizes, all layers kept) with explicit, validated options — the same
/// construct-then-validate idiom as ScanConfig/EngineConfig.
struct GdsReadOptions {
  /// Upper bound on a record's declared length (header included). The
  /// GDSII length field is 16-bit so 65535 admits every legal file;
  /// lowering it rejects adversarially oversized records early, before
  /// any allocation sized by the untrusted field.
  std::size_t max_record_bytes = 65535;
  /// When false, the reader resolves the hierarchy eagerly and returns
  /// a single flat top cell (requires a unique top cell). The default
  /// keeps SREF/AREF references unexpanded.
  bool keep_hierarchy = true;
  /// Keep only boundaries on this layer (negative keeps every layer).
  std::int32_t layer_filter = -1;
  /// Skip record types outside the supported subset (TEXT, PATH,
  /// properties, ...). When false, the first unknown record is a
  /// positioned error — use for strict interchange validation.
  bool skip_unknown = true;

  /// Rejects nonsense configurations (record bound smaller than a
  /// record header / larger than the 16-bit field can express, layer
  /// filter outside the GDSII layer range) with a positioned error.
  /// Both readers call this on entry.
  void validate() const;
};

/// Structure reference: a translated placement of another cell. A plain
/// SREF is the cols == rows == 1 case; an AREF places a cols x rows
/// array stepped by col_pitch in x and row_pitch in y (axis-aligned
/// subset; pitches are normalized non-negative on read).
struct GdsRef {
  std::string cell;
  geom::Point at;
  std::int32_t cols = 1;
  std::int32_t rows = 1;
  geom::Coord col_pitch = 0;  ///< nm step between array columns (x)
  geom::Coord row_pitch = 0;  ///< nm step between array rows (y)

  bool is_array() const { return cols > 1 || rows > 1; }
  /// Total placements this reference expands to.
  std::int64_t instances() const {
    return static_cast<std::int64_t>(cols) * rows;
  }
};

struct GdsCell {
  std::string name;
  std::vector<geom::Polygon> boundaries;
  std::vector<std::int16_t> layers;  ///< parallel to boundaries
  std::vector<GdsRef> refs;

  /// All boundaries on `layer`, decomposed into rectangles (refs are not
  /// resolved — see flatten_cell).
  std::vector<geom::Rect> rects_on_layer(std::int16_t layer) const;
};

struct GdsLibrary {
  std::string name = "HSDL";
  /// Database unit in meters (1e-9 = 1 nm, this library's convention).
  double db_unit_meters = 1e-9;
  /// User unit in database units (GDSII UNITS first field).
  double user_unit = 1e-3;
  std::vector<GdsCell> cells;
};

/// Serializes a library. Boundaries must be rectilinear polygons; refs
/// with is_array() emit AREF records (SNAME + COLROW + 3-point XY).
void write_gds(std::ostream& os, const GdsLibrary& lib);
void write_gds_file(const std::string& path, const GdsLibrary& lib);

/// Parses a GDSII stream; throws CheckError/IoError (with the byte
/// offset and record index) on structural errors.
GdsLibrary read_gds(std::istream& is, const GdsReadOptions& options);
GdsLibrary read_gds_file(const std::string& path,
                         const GdsReadOptions& options);
/// Default-options overloads (the historical behavior: hierarchy kept,
/// unknown records skipped, every layer loaded).
GdsLibrary read_gds(std::istream& is);
GdsLibrary read_gds_file(const std::string& path);

/// Recursively resolves structure references of `cell_name` (repetition
/// included), returning every boundary rectangle on `layer` in the
/// flattened (top-cell) coordinate frame. Cell names resolve through a
/// name index built once per call; unknown cells, reference cycles,
/// absurd hierarchy depth and adversarial instance blow-ups
/// (> ~16.7M placements) are positioned errors, never unbounded
/// recursion.
std::vector<geom::Rect> flatten_cell(const GdsLibrary& lib,
                                     const std::string& cell_name,
                                     std::int16_t layer);

/// Deprecated: one-cell shortcut kept for existing callers. New code
/// should build a GdsLibrary explicitly (or scan through a
/// layout::LayoutSource adapter — DESIGN.md §16) instead of assuming
/// the one-clip-one-cell shape.
GdsLibrary clip_to_gds(const Clip& clip, std::int16_t layer = 1,
                       const std::string& cell_name = "CLIP");

/// Deprecated: rebuilds a clip from the first cell's shapes on `layer`
/// (window = bounding box). Same caveat as clip_to_gds: prefer explicit
/// adapter construction (DESIGN.md §16); this ignores hierarchy and
/// every cell but the first.
Clip gds_to_clip(const GdsLibrary& lib, std::int16_t layer = 1);

// -- GDSII 8-byte real conversion (exposed for tests) --
std::uint64_t to_gds_real(double value);
double from_gds_real(std::uint64_t bits);

}  // namespace hsdl::layout

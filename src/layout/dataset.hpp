// Labeled clip collections — the dataset objects every stage exchanges.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "layout/clip.hpp"

namespace hsdl::layout {

enum class HotspotLabel { kUnknown, kNonHotspot, kHotspot };

const char* to_string(HotspotLabel label);

struct LabeledClip {
  Clip clip;
  HotspotLabel label = HotspotLabel::kUnknown;
};

/// A train/test benchmark in the shape of the paper's Table 2 rows.
struct BenchmarkData {
  std::string name;
  std::vector<LabeledClip> train;
  std::vector<LabeledClip> test;

  std::size_t train_hotspots() const;
  std::size_t train_non_hotspots() const;
  std::size_t test_hotspots() const;
  std::size_t test_non_hotspots() const;
};

/// Counts hotspot-labeled clips.
std::size_t count_hotspots(std::span<const LabeledClip> clips);

/// Deterministically shuffles and splits off a validation fraction
/// (the paper holds out 25 % of training data for the stop criterion).
void split_validation(std::span<const LabeledClip> all, double val_fraction,
                      Rng& rng, std::vector<LabeledClip>& train_out,
                      std::vector<LabeledClip>& val_out);

}  // namespace hsdl::layout

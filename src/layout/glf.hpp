// GLF — a plain-text "geometry list format" for labeled clip sets.
//
// GDSII streams are overkill for fixed-window clip exchange; hotspot
// benchmark suites are commonly shipped as per-clip shape lists.
// Current (hardened) container, always written on output:
//
//   GLF 2 crc32=<8 hex> bytes=<N> clips=<M>
//   CLIP <x> <y> <w> <h> <label>     # label: hotspot | non-hotspot | none
//   RECT <x> <y> <w> <h>             # repeated, absolute nm coordinates
//   ...
//   ENDCLIP
//   ...                              # more CLIP blocks
//
// The header line declares the CRC-32, byte count and clip count of the
// body that follows, so bit flips and truncations are rejected with a
// positioned error instead of silently loading damaged geometry. Legacy
// "GLF 1" files (same body, bare "GLF 1" header, no checksum) still
// read. Within the body, lines starting with '#' and blank lines are
// ignored. File writes are atomic (write temp + rename).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "layout/dataset.hpp"

namespace hsdl::layout {

/// Serializes a clip set; labels kUnknown are written as "none".
void write_glf(std::ostream& os, const std::vector<LabeledClip>& clips);
void write_glf_file(const std::string& path,
                    const std::vector<LabeledClip>& clips);

/// Parses a GLF 1 or GLF 2 stream. Throws hsdl::CheckError with a line
/// number on malformed input and hsdl::io::IoError with a byte offset
/// on container damage (checksum or byte-count mismatch).
std::vector<LabeledClip> read_glf(std::istream& is);
std::vector<LabeledClip> read_glf_file(const std::string& path);

}  // namespace hsdl::layout

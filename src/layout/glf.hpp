// GLF — a plain-text "geometry list format" for labeled clip sets.
//
// GDSII streams are overkill for fixed-window clip exchange; hotspot
// benchmark suites are commonly shipped as per-clip shape lists. Format:
//
//   GLF 1
//   CLIP <x> <y> <w> <h> <label>     # label: hotspot | non-hotspot | none
//   RECT <x> <y> <w> <h>             # repeated, absolute nm coordinates
//   ...
//   ENDCLIP
//   ...                              # more CLIP blocks
//
// Lines starting with '#' and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "layout/dataset.hpp"

namespace hsdl::layout {

/// Serializes a clip set; labels kUnknown are written as "none".
void write_glf(std::ostream& os, const std::vector<LabeledClip>& clips);
void write_glf_file(const std::string& path,
                    const std::vector<LabeledClip>& clips);

/// Parses a GLF stream. Throws hsdl::CheckError with a line number on
/// malformed input.
std::vector<LabeledClip> read_glf(std::istream& is);
std::vector<LabeledClip> read_glf_file(const std::string& path);

}  // namespace hsdl::layout

#include "layout/raster.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hsdl::layout {

MaskImage::MaskImage(std::size_t width, std::size_t height, double nm_per_px,
                     float fill)
    : width_(width),
      height_(height),
      nm_per_px_(nm_per_px),
      data_(width * height, fill) {
  HSDL_CHECK(width > 0 && height > 0);
  HSDL_CHECK(nm_per_px > 0.0);
}

void MaskImage::reset(std::size_t width, std::size_t height, double nm_per_px,
                      float fill) {
  HSDL_CHECK(width > 0 && height > 0);
  HSDL_CHECK(nm_per_px > 0.0);
  width_ = width;
  height_ = height;
  nm_per_px_ = nm_per_px;
  data_.assign(width * height, fill);  // assign() reuses capacity
  span_log_.clear();
  span_log_valid_ = false;
}

bool MaskImage::try_span_clear(std::size_t width, std::size_t height,
                               double nm_per_px) {
  if (!span_log_valid_ || width != width_ || height != height_ ||
      nm_per_px != nm_per_px_)
    return false;
  for (const auto& [y, x0, x1] : span_log_) {
    float* rowp = row(y);
    std::fill(rowp + x0, rowp + x1, 0.0f);
  }
  span_log_.clear();
  return true;
}

double MaskImage::mean() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (float v : data_) sum += v;
  return sum / static_cast<double>(data_.size());
}

double MaskImage::max_abs_diff(const MaskImage& a, const MaskImage& b) {
  HSDL_CHECK(a.width() == b.width() && a.height() == b.height());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(a.data()[i]) -
                                     static_cast<double>(b.data()[i])));
  return worst;
}

MaskImage rasterize(const Clip& clip, double nm_per_px) {
  MaskImage img;
  rasterize_into(clip, nm_per_px, img);
  return img;
}

void rasterize_into(const Clip& clip, double nm_per_px, MaskImage& img) {
  HSDL_CHECK(!clip.window.empty());
  const double wpx = static_cast<double>(clip.window.width()) / nm_per_px;
  const double hpx = static_cast<double>(clip.window.height()) / nm_per_px;
  HSDL_CHECK_MSG(std::abs(wpx - std::round(wpx)) < 1e-9 &&
                     std::abs(hpx - std::round(hpx)) < 1e-9,
                 "window " << clip.window.width() << "x"
                           << clip.window.height()
                           << " nm is not an integer number of pixels at "
                           << nm_per_px << " nm/px");
  const auto width = static_cast<std::size_t>(std::llround(wpx));
  const auto height = static_cast<std::size_t>(std::llround(hpx));
  if (!img.try_span_clear(width, height, nm_per_px))
    img.reset(width, height, nm_per_px);
  img.mark_span_logged();

  // Fill pixel spans per shape. Pixel centre of column x sits at
  // window.lo.x + (x + 0.5) * pitch; it is covered by [r.lo.x, r.hi.x) iff
  // ceil((r.lo.x - 0.5*p - lo) / p) <= x < ceil((r.hi.x - 0.5*p - lo) / p).
  auto first_covered = [&](geom::Coord edge, geom::Coord lo) {
    double v = (static_cast<double>(edge - lo)) / nm_per_px - 0.5;
    auto c = static_cast<long long>(std::ceil(v - 1e-12));
    return c;
  };
  for (const geom::Rect& shape : clip.shapes) {
    const geom::Rect r = shape.intersect(clip.window);
    if (r.empty()) continue;
    long long x0 = std::max(0LL, first_covered(r.lo.x, clip.window.lo.x));
    long long x1 = std::min(static_cast<long long>(width),
                            first_covered(r.hi.x, clip.window.lo.x));
    long long y0 = std::max(0LL, first_covered(r.lo.y, clip.window.lo.y));
    long long y1 = std::min(static_cast<long long>(height),
                            first_covered(r.hi.y, clip.window.lo.y));
    if (x0 >= x1) continue;
    for (long long y = y0; y < y1; ++y) {
      float* rowp = img.row(static_cast<std::size_t>(y));
      std::fill(rowp + x0, rowp + x1, 1.0f);
      img.record_span(static_cast<std::size_t>(y),
                      static_cast<std::size_t>(x0),
                      static_cast<std::size_t>(x1));
    }
  }
}

}  // namespace hsdl::layout

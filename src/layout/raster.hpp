// Raster mask images and clip rasterization.
//
// Both feature extraction (DCT over pixel blocks) and lithography
// simulation consume a sampled binary mask. MaskImage is a dense row-major
// float grid with a physical pixel pitch in nanometres.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "layout/clip.hpp"

namespace hsdl::layout {

/// Dense row-major float image with physical pixel pitch.
class MaskImage {
 public:
  MaskImage() = default;
  MaskImage(std::size_t width, std::size_t height, double nm_per_px,
            float fill = 0.0f);

  /// Re-shapes this image in place and refills it with `fill`, keeping
  /// the existing allocation when it is large enough. Serving paths keep
  /// a thread-local MaskImage and reset() it per clip so rasterization
  /// stops paying an allocation + page-fault per window.
  void reset(std::size_t width, std::size_t height, double nm_per_px,
             float fill = 0.0f);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  double nm_per_px() const { return nm_per_px_; }
  std::size_t size() const { return data_.size(); }

  float& at(std::size_t x, std::size_t y) { return data_[y * width_ + x]; }
  float at(std::size_t x, std::size_t y) const { return data_[y * width_ + x]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t y) { return data_.data() + y * width_; }
  const float* row(std::size_t y) const { return data_.data() + y * width_; }

  /// Mean pixel value (image density for binary masks).
  double mean() const;

  /// Max |a - b| over all pixels; images must have identical shape.
  static double max_abs_diff(const MaskImage& a, const MaskImage& b);

  // --- Span-logged fast clear (used by rasterize_into) -------------------
  //
  // A serving thread re-rasterizes into the same image thousands of times
  // per second, and the full refill in reset() costs more than the shape
  // fills themselves. rasterize_into instead logs every span it sets to 1;
  // the next call then only has to zero those spans, because every other
  // pixel is still 0 from the previous round. The log is only trusted
  // while no other writer touched the buffer: reset() and the constructors
  // invalidate it, and any code mutating a raster through row()/data()/at()
  // must call reset() before handing it back to rasterize_into.

  /// Zeroes just the logged spans when the shape is unchanged and the log
  /// is valid; returns false (caller must do a full reset) otherwise.
  bool try_span_clear(std::size_t width, std::size_t height,
                      double nm_per_px);
  /// Marks the buffer as fully span-logged from now on.
  void mark_span_logged() { span_log_valid_ = true; }
  void record_span(std::size_t y, std::size_t x0, std::size_t x1) {
    span_log_.push_back({y, x0, x1});
  }

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  double nm_per_px_ = 1.0;
  std::vector<float> data_;
  std::vector<std::array<std::size_t, 3>> span_log_;
  bool span_log_valid_ = false;
};

/// Rasterizes a clip to a binary mask (1 inside shapes, 0 outside).
///
/// Pixel (x, y) covers the physical square
/// [window.lo + x*pitch, +pitch) x [window.lo + y*pitch, +pitch); a pixel is
/// set when its *centre* falls inside a shape, which keeps abutting shapes
/// seamless. The window extent must be an integer multiple of the pitch.
MaskImage rasterize(const Clip& clip, double nm_per_px);

/// Allocation-free variant: rasterizes into `img`, reset() to the right
/// shape (reusing its buffer). Pixel values are bitwise identical to
/// rasterize()'s.
void rasterize_into(const Clip& clip, double nm_per_px, MaskImage& img);

}  // namespace hsdl::layout

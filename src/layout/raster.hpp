// Raster mask images and clip rasterization.
//
// Both feature extraction (DCT over pixel blocks) and lithography
// simulation consume a sampled binary mask. MaskImage is a dense row-major
// float grid with a physical pixel pitch in nanometres.
#pragma once

#include <cstddef>
#include <vector>

#include "layout/clip.hpp"

namespace hsdl::layout {

/// Dense row-major float image with physical pixel pitch.
class MaskImage {
 public:
  MaskImage() = default;
  MaskImage(std::size_t width, std::size_t height, double nm_per_px,
            float fill = 0.0f);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }
  double nm_per_px() const { return nm_per_px_; }
  std::size_t size() const { return data_.size(); }

  float& at(std::size_t x, std::size_t y) { return data_[y * width_ + x]; }
  float at(std::size_t x, std::size_t y) const { return data_[y * width_ + x]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(std::size_t y) { return data_.data() + y * width_; }
  const float* row(std::size_t y) const { return data_.data() + y * width_; }

  /// Mean pixel value (image density for binary masks).
  double mean() const;

  /// Max |a - b| over all pixels; images must have identical shape.
  static double max_abs_diff(const MaskImage& a, const MaskImage& b);

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  double nm_per_px_ = 1.0;
  std::vector<float> data_;
};

/// Rasterizes a clip to a binary mask (1 inside shapes, 0 outside).
///
/// Pixel (x, y) covers the physical square
/// [window.lo + x*pitch, +pitch) x [window.lo + y*pitch, +pitch); a pixel is
/// set when its *centre* falls inside a shape, which keeps abutting shapes
/// seamless. The window extent must be an integer multiple of the pitch.
MaskImage rasterize(const Clip& clip, double nm_per_px);

}  // namespace hsdl::layout

// Streaming hierarchical GDSII front-end (DESIGN.md §16).
//
// read_gds (layout/gdsii.hpp) slurps the whole stream into memory and
// models it as an editable DOM — fine for clips, fatal for full chips
// where most area is repeated array instances that a flat in-memory
// model would expand. This header is the chip-scale path:
//
//   * GdsRecordReader — a forward-only tag/length record cursor over a
//     std::istream. One bounded record buffer (GdsReadOptions::
//     max_record_bytes) is reused for every record, so peak reader
//     memory is O(1) in the file size; every diagnostic carries the
//     absolute byte offset and record index.
//   * HierLayout — cells with their rectangles plus SREF/AREF
//     placements kept *unexpanded* (repetition as cols/rows/pitch).
//     Each cell carries its subtree bounding box and a content hash
//     that identifies the cell's flattened geometry up to translation —
//     the key the scan-result cache (hotspot/scan_cache.hpp) reuses
//     scored windows under.
//   * window-query descent — HierLayout::query resolves only the
//     placements whose subtree boxes intersect the query window
//     (AREF index ranges are computed in O(1) from the pitch), so
//     extracting a scan band touches O(geometry under the band) memory
//     regardless of chip size.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "layout/gdsii.hpp"

namespace hsdl::layout {

/// One unexpanded placement: `cell` indexes HierLayout::cells().
/// Repetition is normalized (cols, rows >= 1; pitches >= 0, positive
/// when the corresponding count is > 1).
struct HierPlacement {
  std::uint32_t cell = 0;
  geom::Point at;
  std::int32_t cols = 1;
  std::int32_t rows = 1;
  geom::Coord col_pitch = 0;
  geom::Coord row_pitch = 0;

  std::int64_t instances() const {
    return static_cast<std::int64_t>(cols) * rows;
  }
  /// Origin of array element (i, j).
  geom::Point origin(std::int32_t i, std::int32_t j) const {
    return {at.x + i * col_pitch, at.y + j * row_pitch};
  }
};

struct HierCell {
  std::string name;
  std::vector<geom::Rect> shapes;    ///< local rectangles (cell frame)
  std::vector<std::int16_t> layers;  ///< parallel to shapes
  std::vector<HierPlacement> placements;
  /// Bounding box of the whole subtree (local shapes + every placement,
  /// repetition included) in this cell's frame. Empty for empty cells.
  geom::Rect bbox;
  /// Identifies the subtree's flattened geometry up to translation:
  /// equal hashes => congruent flattened content. Two cells that happen
  /// to contain identical geometry hash equal, which lets the scan
  /// cache share their windows.
  std::uint64_t content_hash = 0;
};

/// A GDSII hierarchy with references kept unexpanded. Immutable once
/// built (by read_hier_gds / hier_from_library); all query methods are
/// const and thread-safe.
class HierLayout {
 public:
  const std::vector<HierCell>& cells() const { return cells_; }
  const HierCell& cell(std::size_t i) const { return cells_[i]; }
  /// Index of the top cell (the unique cell no placement references).
  std::size_t top() const { return top_; }
  /// Subtree bbox of the top cell — the scannable chip extent.
  const geom::Rect& extent() const { return cells_[top_].bbox; }
  /// Content fingerprint of the whole layout (top cell's hash mixed
  /// with the library name) — used to fence scan journals.
  std::uint64_t fingerprint() const;

  /// Appends every shape on `layer` that overlaps `window` — clipped to
  /// the window, in top-cell coordinates — to `out`. Lazy descent: only
  /// placements whose subtree bbox intersects the window are expanded,
  /// and only the intersecting index range of each array.
  void query(const geom::Rect& window, std::int16_t layer,
             std::vector<geom::Rect>& out) const;

  /// Fully flattened geometry of `layer` in top-cell coordinates — the
  /// test oracle and the bridge to the flat Layout model. Guarded by
  /// the same instance ceiling as flatten_cell.
  std::vector<geom::Rect> flatten(std::int16_t layer) const;

  /// Sum of instances() over all placements reachable from the top —
  /// the size a flat expansion would multiply geometry by.
  std::int64_t flat_instance_count() const;

  /// Layers present anywhere in the hierarchy, ascending.
  std::vector<std::int16_t> present_layers() const;

 private:
  friend HierLayout read_hier_gds(std::istream&, const GdsReadOptions&);
  friend HierLayout hier_from_library(const GdsLibrary&,
                                      const GdsReadOptions&);

  void query_cell(std::size_t cell_index, geom::Point offset,
                  const geom::Rect& window, std::int16_t layer,
                  std::vector<geom::Rect>& out, std::size_t depth) const;
  /// keep_hierarchy == false: replace the hierarchy with one flat top
  /// cell holding the fully expanded geometry.
  void collapse(const std::string& library_name);
  /// Resolves `raw_refs` (per-cell, by cell name) into placements,
  /// orients the DAG (cycle check), computes subtree bboxes and content
  /// hashes, picks the top cell. Throws CheckError on cycles, unknown
  /// or duplicate names, or a missing unique top.
  void finalize(const std::string& library_name,
                std::vector<std::vector<GdsRef>>&& raw_refs);

  std::vector<HierCell> cells_;
  std::size_t top_ = 0;
  std::uint64_t fingerprint_ = 0;
};

/// Streams a GDSII file into a HierLayout without expanding references.
/// Unlike read_gds this never buffers the file: records are framed
/// directly off the istream through one bounded, reused record buffer.
/// With options.keep_hierarchy == false the result still arrives as a
/// HierLayout, but flattened into a single top cell (memory O(flat)).
HierLayout read_hier_gds(std::istream& is, const GdsReadOptions& options = {});
HierLayout read_hier_gds_file(const std::string& path,
                              const GdsReadOptions& options = {});

/// Converts an in-memory GdsLibrary (e.g. generator-built hierarchies
/// in tests) into the same HierLayout the streaming reader produces.
HierLayout hier_from_library(const GdsLibrary& lib,
                             const GdsReadOptions& options = {});

}  // namespace hsdl::layout

#include "layout/glf.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.hpp"
#include "common/string_util.hpp"

namespace hsdl::layout {
namespace {

HotspotLabel parse_label(const std::string& s, std::size_t lineno) {
  if (s == "hotspot") return HotspotLabel::kHotspot;
  if (s == "non-hotspot") return HotspotLabel::kNonHotspot;
  if (s == "none") return HotspotLabel::kUnknown;
  HSDL_CHECK_MSG(false, "GLF line " << lineno << ": bad label '" << s << "'");
  return HotspotLabel::kUnknown;
}

geom::Rect parse_rect(const std::vector<std::string>& tok, std::size_t lineno) {
  HSDL_CHECK_MSG(tok.size() >= 5, "GLF line " << lineno << ": expected "
                                              << "x y w h");
  const geom::Coord x = std::stoll(tok[1]);
  const geom::Coord y = std::stoll(tok[2]);
  const geom::Coord w = std::stoll(tok[3]);
  const geom::Coord h = std::stoll(tok[4]);
  HSDL_CHECK_MSG(w > 0 && h > 0,
                 "GLF line " << lineno << ": non-positive extent");
  return geom::Rect::from_xywh(x, y, w, h);
}

}  // namespace

void write_glf(std::ostream& os, const std::vector<LabeledClip>& clips) {
  os << "GLF 1\n";
  for (const LabeledClip& lc : clips) {
    const geom::Rect& w = lc.clip.window;
    os << "CLIP " << w.lo.x << ' ' << w.lo.y << ' ' << w.width() << ' '
       << w.height() << ' ' << to_string(lc.label) << '\n';
    for (const geom::Rect& r : lc.clip.shapes)
      os << "RECT " << r.lo.x << ' ' << r.lo.y << ' ' << r.width() << ' '
         << r.height() << '\n';
    os << "ENDCLIP\n";
  }
}

void write_glf_file(const std::string& path,
                    const std::vector<LabeledClip>& clips) {
  std::ofstream os(path);
  HSDL_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  write_glf(os, clips);
  HSDL_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

std::vector<LabeledClip> read_glf(std::istream& is) {
  std::vector<LabeledClip> out;
  std::string line;
  std::size_t lineno = 0;

  bool saw_header = false;
  bool in_clip = false;
  LabeledClip current;

  while (std::getline(is, line)) {
    ++lineno;
    std::string_view sv = trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> tok = split_ws(sv);

    if (!saw_header) {
      HSDL_CHECK_MSG(tok.size() == 2 && tok[0] == "GLF" && tok[1] == "1",
                     "GLF line " << lineno << ": missing 'GLF 1' header");
      saw_header = true;
      continue;
    }
    if (tok[0] == "CLIP") {
      HSDL_CHECK_MSG(!in_clip, "GLF line " << lineno << ": nested CLIP");
      HSDL_CHECK_MSG(tok.size() == 6,
                     "GLF line " << lineno << ": CLIP needs x y w h label");
      current = LabeledClip{};
      current.clip.window = parse_rect(tok, lineno);
      current.label = parse_label(tok[5], lineno);
      in_clip = true;
    } else if (tok[0] == "RECT") {
      HSDL_CHECK_MSG(in_clip, "GLF line " << lineno << ": RECT outside CLIP");
      current.clip.shapes.push_back(parse_rect(tok, lineno));
    } else if (tok[0] == "ENDCLIP") {
      HSDL_CHECK_MSG(in_clip,
                     "GLF line " << lineno << ": ENDCLIP outside CLIP");
      out.push_back(std::move(current));
      in_clip = false;
    } else {
      HSDL_CHECK_MSG(false,
                     "GLF line " << lineno << ": unknown token '" << tok[0]
                                 << "'");
    }
  }
  HSDL_CHECK_MSG(!in_clip, "GLF: unterminated CLIP at end of stream");
  HSDL_CHECK_MSG(saw_header, "GLF: empty stream (no header)");
  return out;
}

std::vector<LabeledClip> read_glf_file(const std::string& path) {
  std::ifstream is(path);
  HSDL_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return read_glf(is);
}

}  // namespace hsdl::layout

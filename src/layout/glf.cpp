#include "layout/glf.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/io.hpp"
#include "common/string_util.hpp"

namespace hsdl::layout {
namespace {

/// Full-match signed integer parse. std::stoll would accept trailing
/// garbage ("12x" -> 12) and throw bare std::invalid_argument /
/// std::out_of_range on damage; this keeps every malformed number inside
/// the positioned CheckError taxonomy.
geom::Coord parse_coord(const std::string& s, std::size_t lineno) {
  geom::Coord v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  HSDL_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
                 "GLF line " << lineno << ": bad integer '" << s << "'");
  return v;
}

std::uint64_t parse_u64_field(std::string_view token, std::string_view key,
                              const char* what) {
  HSDL_CHECK_MSG(token.size() > key.size() &&
                     token.substr(0, key.size()) == key,
                 "GLF 2 header: malformed " << what << " field '" << token
                                            << "'");
  const std::string_view digits = token.substr(key.size());
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  HSDL_CHECK_MSG(ec == std::errc{} && ptr == digits.data() + digits.size(),
                 "GLF 2 header: bad " << what << " value '" << digits << "'");
  return v;
}

std::uint32_t parse_crc_field(std::string_view token) {
  constexpr std::string_view key = "crc32=";
  HSDL_CHECK_MSG(token.size() == key.size() + 8 &&
                     token.substr(0, key.size()) == key,
                 "GLF 2 header: malformed crc32 field '" << token << "'");
  const std::string_view digits = token.substr(key.size());
  // Canonical lowercase hex only, so every single-bit corruption of the
  // field is detectable (base-16 from_chars would also accept 'A'-'F',
  // making a case-flipped digit parse to the same value).
  for (char c : digits)
    HSDL_CHECK_MSG((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'),
                   "GLF 2 header: bad crc32 value '" << digits << "'");
  std::uint32_t v = 0;
  const auto [ptr, ec] = std::from_chars(
      digits.data(), digits.data() + digits.size(), v, /*base=*/16);
  HSDL_CHECK_MSG(ec == std::errc{} && ptr == digits.data() + digits.size(),
                 "GLF 2 header: bad crc32 value '" << digits << "'");
  return v;
}

HotspotLabel parse_label(const std::string& s, std::size_t lineno) {
  if (s == "hotspot") return HotspotLabel::kHotspot;
  if (s == "non-hotspot") return HotspotLabel::kNonHotspot;
  if (s == "none") return HotspotLabel::kUnknown;
  HSDL_CHECK_MSG(false, "GLF line " << lineno << ": bad label '" << s << "'");
  return HotspotLabel::kUnknown;
}

geom::Rect parse_rect(const std::vector<std::string>& tok, std::size_t lineno) {
  HSDL_CHECK_MSG(tok.size() >= 5, "GLF line " << lineno << ": expected "
                                              << "x y w h");
  const geom::Coord x = parse_coord(tok[1], lineno);
  const geom::Coord y = parse_coord(tok[2], lineno);
  const geom::Coord w = parse_coord(tok[3], lineno);
  const geom::Coord h = parse_coord(tok[4], lineno);
  HSDL_CHECK_MSG(w > 0 && h > 0,
                 "GLF line " << lineno << ": non-positive extent");
  return geom::Rect::from_xywh(x, y, w, h);
}

/// Clip list body (the CLIP/RECT/ENDCLIP lines). `lineno_base` offsets
/// reported line numbers so GLF 2 errors count from the real file line.
/// When `expect_header` is set the first significant line must be the
/// legacy "GLF 1" header.
std::vector<LabeledClip> parse_body(std::istream& is, std::size_t lineno_base,
                                    bool expect_header) {
  std::vector<LabeledClip> out;
  std::string line;
  std::size_t lineno = lineno_base;

  bool saw_header = !expect_header;
  bool in_clip = false;
  LabeledClip current;

  while (std::getline(is, line)) {
    ++lineno;
    std::string_view sv = trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> tok = split_ws(sv);

    if (!saw_header) {
      HSDL_CHECK_MSG(tok.size() == 2 && tok[0] == "GLF",
                     "GLF line " << lineno << ": missing 'GLF 1' header");
      HSDL_CHECK_MSG(tok[1] == "1", "GLF line "
                                        << lineno
                                        << ": unsupported GLF version '"
                                        << tok[1] << "'");
      saw_header = true;
      continue;
    }
    if (tok[0] == "CLIP") {
      HSDL_CHECK_MSG(!in_clip, "GLF line " << lineno << ": nested CLIP");
      HSDL_CHECK_MSG(tok.size() == 6,
                     "GLF line " << lineno << ": CLIP needs x y w h label");
      current = LabeledClip{};
      current.clip.window = parse_rect(tok, lineno);
      current.label = parse_label(tok[5], lineno);
      in_clip = true;
    } else if (tok[0] == "RECT") {
      HSDL_CHECK_MSG(in_clip, "GLF line " << lineno << ": RECT outside CLIP");
      current.clip.shapes.push_back(parse_rect(tok, lineno));
    } else if (tok[0] == "ENDCLIP") {
      HSDL_CHECK_MSG(in_clip,
                     "GLF line " << lineno << ": ENDCLIP outside CLIP");
      out.push_back(std::move(current));
      in_clip = false;
    } else {
      HSDL_CHECK_MSG(false,
                     "GLF line " << lineno << ": unknown token '" << tok[0]
                                 << "'");
    }
  }
  HSDL_CHECK_MSG(!in_clip, "GLF: unterminated CLIP at end of stream");
  HSDL_CHECK_MSG(saw_header, "GLF: empty stream (no header)");
  return out;
}

std::string render_body(const std::vector<LabeledClip>& clips) {
  std::ostringstream os;
  for (const LabeledClip& lc : clips) {
    const geom::Rect& w = lc.clip.window;
    os << "CLIP " << w.lo.x << ' ' << w.lo.y << ' ' << w.width() << ' '
       << w.height() << ' ' << to_string(lc.label) << '\n';
    for (const geom::Rect& r : lc.clip.shapes)
      os << "RECT " << r.lo.x << ' ' << r.lo.y << ' ' << r.width() << ' '
         << r.height() << '\n';
    os << "ENDCLIP\n";
  }
  return os.str();
}

std::string render_glf(const std::vector<LabeledClip>& clips) {
  const std::string body = render_body(clips);
  std::ostringstream os;
  os << "GLF 2 crc32=";
  os << std::hex;
  os.width(8);
  os.fill('0');
  os << io::crc32(body);
  os << std::dec << " bytes=" << body.size() << " clips=" << clips.size()
     << '\n'
     << body;
  return os.str();
}

/// GLF 2 hardened container: the first line is
///   GLF 2 crc32=<8 hex> bytes=<N> clips=<M>
/// and the remaining N bytes are the clip body the CRC-32 covers. Any
/// bit flip, truncation or header-field mutation fails one of the
/// checks below with a positioned diagnostic.
std::vector<LabeledClip> read_glf2(const std::string& data) {
  const std::size_t nl = data.find('\n');
  HSDL_CHECK_MSG(nl != std::string::npos,
                 "GLF 2 header: missing end-of-line");
  const std::vector<std::string> tok =
      split_ws(std::string_view(data).substr(0, nl));
  HSDL_CHECK_MSG(tok.size() == 5 && tok[0] == "GLF" && tok[1] == "2",
                 "GLF 2 header: expected 'GLF 2 crc32=… bytes=… clips=…', "
                 "got " << tok.size() << " token(s)");
  const std::uint32_t want_crc = parse_crc_field(tok[2]);
  const std::uint64_t want_bytes = parse_u64_field(tok[3], "bytes=", "bytes");
  const std::uint64_t want_clips = parse_u64_field(tok[4], "clips=", "clips");

  const std::string_view body = std::string_view(data).substr(nl + 1);
  if (body.size() != want_bytes)
    throw io::IoError("body is " + std::to_string(body.size()) +
                          " byte(s), header says " +
                          std::to_string(want_bytes) +
                          " (truncated or corrupt)",
                      nl + 1 + body.size(), "GLF 2");
  const std::uint32_t got_crc = io::crc32(body);
  if (got_crc != want_crc)
    throw io::IoError("body checksum mismatch (corrupt file)", nl + 1,
                      "GLF 2");

  std::istringstream is{std::string(body)};
  std::vector<LabeledClip> out =
      parse_body(is, /*lineno_base=*/1, /*expect_header=*/false);
  HSDL_CHECK_MSG(out.size() == want_clips,
                 "GLF 2: body has " << out.size()
                                    << " clip(s), header says "
                                    << want_clips);
  return out;
}

}  // namespace

void write_glf(std::ostream& os, const std::vector<LabeledClip>& clips) {
  const std::string data = render_glf(clips);
  os.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void write_glf_file(const std::string& path,
                    const std::vector<LabeledClip>& clips) {
  io::atomic_write_file(path, render_glf(clips));
}

std::vector<LabeledClip> read_glf(std::istream& is) {
  const std::string data = io::read_stream(is);
  if (data.rfind("GLF 2", 0) == 0) return read_glf2(data);
  // Legacy GLF 1: tolerant line format (comments may precede the
  // header), no checksum.
  std::istringstream body(data);
  return parse_body(body, /*lineno_base=*/0, /*expect_header=*/true);
}

std::vector<LabeledClip> read_glf_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HSDL_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return read_glf(is);
}

}  // namespace hsdl::layout

// Unified scan-source API (DESIGN.md §16).
//
// ChipScanner used to be welded to the flat in-memory Layout model; the
// hierarchical streaming path (gds_stream.hpp) needs the scanner to
// consume windows without ever materializing the flattened chip. A
// LayoutSource is the small surface the scanner actually needs:
//
//   * extent()       — the scannable area (drives the window grid)
//   * extract_clip() — the geometry under one window, clipped to it
//   * fingerprint()  — content identity, mixed into scan-journal
//                      fingerprints so a resume never replays bands
//                      recorded against different geometry
//   * window_key()   — optional reuse identity: equal keys guarantee
//                      bitwise-identical *normalized* clips, which lets
//                      a CellScanCache (hotspot/scan_cache.hpp) replay a
//                      scored probability for every repeated placement
//                      of the same cell instead of re-extracting and
//                      re-scoring it
//
// Two adapters cover the existing models: FlatSource wraps a Layout
// (no reuse identity — flat geometry carries no repetition structure)
// and HierSource wraps a HierLayout, deriving window keys from cell
// content hashes.
#pragma once

#include <cstdint>
#include <optional>

#include "layout/gds_stream.hpp"
#include "layout/layout.hpp"

namespace hsdl::layout {

/// Reuse identity of a window's geometry. Two windows with equal keys
/// are guaranteed to contain translation-congruent geometry, i.e. their
/// normalized() clips are bitwise identical. Keys are only comparable
/// within one LayoutSource and one window size — a scan-result cache
/// must not be shared across sources or scan configs.
struct WindowKey {
  /// Content hash of the deepest cell whose subtree alone covers the
  /// window (0 for the empty-window sentinel).
  std::uint64_t cell_hash = 0;
  /// Window lower-left corner in that cell's coordinate frame.
  geom::Point offset;
  /// True for the "window contains no geometry at all" sentinel — every
  /// empty window shares one cache slot regardless of position.
  bool empty_window = false;

  friend bool operator==(const WindowKey&, const WindowKey&) = default;
};

struct WindowKeyHash {
  std::size_t operator()(const WindowKey& k) const;
};

/// Read-only window server the scanner consumes. Implementations must
/// be thread-safe for concurrent const calls (bands are extracted in
/// parallel).
class LayoutSource {
 public:
  virtual ~LayoutSource() = default;

  /// The scannable area; the window grid spans exactly this rect.
  virtual const geom::Rect& extent() const = 0;

  /// Content fingerprint of the geometry this source serves. Mixed into
  /// ScanJournal fingerprints: two sources with different fingerprints
  /// never share resume state.
  virtual std::uint64_t fingerprint() const = 0;

  /// All shapes intersecting `window`, clipped to it, in source
  /// coordinates (Clip::window == window).
  virtual Clip extract_clip(const geom::Rect& window) const = 0;

  /// Reuse identity for `window`, or nullopt when this source cannot
  /// prove the window repeats (the default — flat sources never can).
  /// Contract: equal keys => extract_clip(w).normalized() bitwise equal.
  virtual std::optional<WindowKey> window_key(
      const geom::Rect& window) const {
    (void)window;
    return std::nullopt;
  }
};

/// Adapter over the flat Layout model — the old scan path, verbatim.
/// Non-owning: the Layout must outlive the adapter.
class FlatSource final : public LayoutSource {
 public:
  explicit FlatSource(const Layout& chip);

  const geom::Rect& extent() const override { return chip_->extent(); }
  std::uint64_t fingerprint() const override { return fingerprint_; }
  Clip extract_clip(const geom::Rect& window) const override {
    return chip_->extract_clip(window);
  }

 private:
  const Layout* chip_;
  std::uint64_t fingerprint_;
};

/// Adapter over a HierLayout, serving one mask layer. Window keys
/// descend the hierarchy: while the window is covered by exactly one
/// placement-instance subtree (and no local shapes), descend into it;
/// the key is the deepest such cell's content hash plus the window
/// offset in that cell's frame. Windows stuck at the top cell get no
/// key (caching them would insert one entry per window for zero reuse).
/// Non-owning: the HierLayout must outlive the adapter.
class HierSource final : public LayoutSource {
 public:
  explicit HierSource(const HierLayout& hier, std::int16_t layer = 1);

  const geom::Rect& extent() const override { return hier_->extent(); }
  std::uint64_t fingerprint() const override { return fingerprint_; }
  Clip extract_clip(const geom::Rect& window) const override;
  std::optional<WindowKey> window_key(
      const geom::Rect& window) const override;

  std::int16_t layer() const { return layer_; }

 private:
  const HierLayout* hier_;
  std::int16_t layer_;
  std::uint64_t fingerprint_;
};

}  // namespace hsdl::layout

#include "fte/feature_tensor.hpp"

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "fte/zigzag.hpp"

namespace hsdl::fte {

FeatureTensorExtractor::FeatureTensorExtractor(
    const FeatureTensorConfig& config)
    : config_(config) {
  HSDL_CHECK(config.blocks_per_side > 0);
  HSDL_CHECK(config.coeffs > 0);
  HSDL_CHECK(config.nm_per_px > 0.0);
}

const DctPlan& FeatureTensorExtractor::plan_for(std::size_t block) const {
  std::lock_guard<std::mutex> lock(plans_mu_);
  for (const auto& [size, plan] : plans_)
    if (size == block) return *plan;
  plans_.emplace_back(block, std::make_unique<DctPlan>(block));
  return *plans_.back().second;
}

std::size_t FeatureTensorExtractor::block_px(
    const layout::MaskImage& raster) const {
  const std::size_t n = config_.blocks_per_side;
  HSDL_CHECK_MSG(raster.width() == raster.height(),
                 "feature tensor extraction expects a square raster, got "
                     << raster.width() << "x" << raster.height());
  HSDL_CHECK_MSG(raster.width() % n == 0,
                 "raster side " << raster.width()
                                << " is not divisible into " << n
                                << " blocks");
  return raster.width() / n;
}

void FeatureTensorExtractor::extract_into(const layout::MaskImage& raster,
                                          std::span<float> out) const {
  HSDL_TRACE_SPAN("fte.extract");
  if (metrics::enabled()) {
    static metrics::Counter& tensors = metrics::counter("fte.tensors");
    static metrics::Counter& blocks = metrics::counter("fte.dct_blocks");
    tensors.increment();
    blocks.add(static_cast<std::uint64_t>(config_.blocks_per_side) *
               config_.blocks_per_side);
  }
  const std::size_t n = config_.blocks_per_side;
  const std::size_t k = config_.coeffs;
  const std::size_t B = block_px(raster);
  HSDL_CHECK_MSG(k <= B * B, "cannot keep " << k << " coefficients from a "
                                            << B << "x" << B << " block");
  HSDL_CHECK_MSG(out.size() == k * n * n,
                 "extract_into expects " << k * n * n << " floats, got "
                                         << out.size());

  const DctPlan& plan = plan_for(B);
  // Partial DCT: only the corner covering the first k zig-zag positions.
  const std::size_t kp = corner_for_prefix(B, k);

  std::vector<float> block(B * B);
  std::vector<float> corner(kp * kp);
  std::vector<float> scan(k);
  for (std::size_t by = 0; by < n; ++by) {
    for (std::size_t bx = 0; bx < n; ++bx) {
      // Gather the block (row-major copy out of the raster).
      for (std::size_t y = 0; y < B; ++y) {
        const float* src = raster.row(by * B + y) + bx * B;
        float* dst = &block[y * B];
        for (std::size_t x = 0; x < B; ++x) dst[x] = src[x];
      }
      plan.partial(block.data(), kp, corner.data());
      zigzag_take(corner.data(), kp, k, scan.data());
      const float scale =
          config_.normalize ? 1.0f / static_cast<float>(B) : 1.0f;
      for (std::size_t c = 0; c < k; ++c)
        out[(c * n + by) * n + bx] = scan[c] * scale;
    }
  }
}

void FeatureTensorExtractor::extract_into(const layout::Clip& clip,
                                          std::span<float> out) const {
  extract_into(layout::rasterize(clip, config_.nm_per_px), out);
}

FeatureTensor FeatureTensorExtractor::extract(
    const layout::MaskImage& raster) const {
  const std::size_t n = config_.blocks_per_side;
  const std::size_t k = config_.coeffs;
  FeatureTensor out;
  out.n = n;
  out.k = k;
  out.data.assign(k * n * n, 0.0f);
  extract_into(raster, out.data);
  return out;
}

FeatureTensor FeatureTensorExtractor::extract(const layout::Clip& clip) const {
  return extract(layout::rasterize(clip, config_.nm_per_px));
}

std::vector<FeatureTensor> FeatureTensorExtractor::extract_batch(
    std::span<const layout::Clip> clips) const {
  HSDL_TRACE_SPAN("fte.extract_batch");
  std::vector<FeatureTensor> out(clips.size());
  parallel_for(0, clips.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = extract(clips[i]);
  });
  return out;
}

layout::MaskImage FeatureTensorExtractor::reconstruct(
    const FeatureTensor& tensor, std::size_t block_px_arg) const {
  const std::size_t n = tensor.n;
  const std::size_t k = tensor.k;
  const std::size_t B = block_px_arg;
  HSDL_CHECK(n > 0 && k > 0 && B > 0);
  HSDL_CHECK(tensor.data.size() == k * n * n);
  HSDL_CHECK(k <= B * B);

  const DctPlan& plan = plan_for(B);
  const std::size_t kp = corner_for_prefix(B, k);

  layout::MaskImage img(n * B, n * B, config_.nm_per_px);
  std::vector<float> scan(k);
  std::vector<float> corner(kp * kp);
  std::vector<float> block(B * B);
  for (std::size_t by = 0; by < n; ++by) {
    for (std::size_t bx = 0; bx < n; ++bx) {
      const float unscale =
          config_.normalize ? static_cast<float>(B) : 1.0f;
      for (std::size_t c = 0; c < k; ++c)
        scan[c] = tensor.at(c, by, bx) * unscale;
      zigzag_put(scan.data(), k, kp, corner.data());
      plan.inverse_partial(corner.data(), kp, block.data());
      for (std::size_t y = 0; y < B; ++y) {
        float* dst = img.row(by * B + y) + bx * B;
        const float* src = &block[y * B];
        for (std::size_t x = 0; x < B; ++x) dst[x] = src[x];
      }
    }
  }
  return img;
}

}  // namespace hsdl::fte

#include "fte/feature_tensor.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/refmode.hpp"
#include "common/trace.hpp"
#include "fte/zigzag.hpp"

namespace hsdl::fte {
namespace {

/// corner_for_prefix rebuilds the full zig-zag walk (allocating) for
/// every candidate corner size, which is far too slow to re-derive per
/// window on the serving path. The answer only depends on (B, k), so
/// cache the last result per thread — serving hits one shape forever.
std::size_t cached_corner_for_prefix(std::size_t block, std::size_t k) {
  thread_local std::size_t c_block = 0, c_k = 0, c_kp = 0;
  if (c_block != block || c_k != k) {
    c_kp = corner_for_prefix(block, k);
    c_block = block;
    c_k = k;
  }
  return c_kp;
}

}  // namespace

FeatureTensorExtractor::FeatureTensorExtractor(
    const FeatureTensorConfig& config)
    : config_(config) {
  HSDL_CHECK(config.blocks_per_side > 0);
  HSDL_CHECK(config.coeffs > 0);
  HSDL_CHECK(config.nm_per_px > 0.0);
}

const DctPlan& FeatureTensorExtractor::plan_for(std::size_t block) const {
  // Lock-free fast path: extraction hits one block size almost always, so
  // the last plan used is published in an atomic. Plans are immutable and
  // never deallocated while the extractor lives, so a stale pointer is
  // safe to read — it either matches or we fall through to the mutex.
  const DctPlan* cached = plan_cache_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->block_size() == block) return *cached;
  std::lock_guard<std::mutex> lock(plans_mu_);
  for (const auto& [size, plan] : plans_) {
    if (size == block) {
      plan_cache_.store(plan.get(), std::memory_order_release);
      return *plan;
    }
  }
  plans_.emplace_back(block, std::make_unique<DctPlan>(block));
  const DctPlan* fresh = plans_.back().second.get();
  plan_cache_.store(fresh, std::memory_order_release);
  return *fresh;
}

std::size_t FeatureTensorExtractor::block_px(
    const layout::MaskImage& raster) const {
  const std::size_t n = config_.blocks_per_side;
  HSDL_CHECK_MSG(raster.width() == raster.height(),
                 "feature tensor extraction expects a square raster, got "
                     << raster.width() << "x" << raster.height());
  HSDL_CHECK_MSG(raster.width() % n == 0,
                 "raster side " << raster.width()
                                << " is not divisible into " << n
                                << " blocks");
  return raster.width() / n;
}

void FeatureTensorExtractor::extract_into(const layout::MaskImage& raster,
                                          std::span<float> out) const {
  HSDL_TRACE_SPAN("fte.extract");
  if (metrics::enabled()) {
    static metrics::Counter& tensors = metrics::counter("fte.tensors");
    static metrics::Counter& blocks = metrics::counter("fte.dct_blocks");
    tensors.increment();
    blocks.add(static_cast<std::uint64_t>(config_.blocks_per_side) *
               config_.blocks_per_side);
  }
  const std::size_t n = config_.blocks_per_side;
  const std::size_t k = config_.coeffs;
  const std::size_t B = block_px(raster);
  HSDL_CHECK_MSG(k <= B * B, "cannot keep " << k << " coefficients from a "
                                            << B << "x" << B << " block");
  HSDL_CHECK_MSG(out.size() == k * n * n,
                 "extract_into expects " << k * n * n << " floats, got "
                                         << out.size());

  // The banded path handles every corner size the zig-zag prefix of a
  // real config produces (kp <= 8 covers k <= 36); exotic test configs and
  // reference mode take the original per-block path.
  const std::size_t kp = cached_corner_for_prefix(B, k);
  if (runtime::reference_mode() || kp > 8) {
    extract_reference(raster, out);
  } else {
    extract_fast(raster, out);
  }
}

void FeatureTensorExtractor::extract_reference(const layout::MaskImage& raster,
                                               std::span<float> out) const {
  const std::size_t n = config_.blocks_per_side;
  const std::size_t k = config_.coeffs;
  const std::size_t B = block_px(raster);
  const DctPlan& plan = plan_for(B);
  // Partial DCT: only the corner covering the first k zig-zag positions.
  const std::size_t kp = cached_corner_for_prefix(B, k);

  std::vector<float> block(B * B);
  std::vector<float> corner(kp * kp);
  std::vector<float> scan(k);
  for (std::size_t by = 0; by < n; ++by) {
    for (std::size_t bx = 0; bx < n; ++bx) {
      // Gather the block (row-major copy out of the raster).
      for (std::size_t y = 0; y < B; ++y) {
        const float* src = raster.row(by * B + y) + bx * B;
        float* dst = &block[y * B];
        for (std::size_t x = 0; x < B; ++x) dst[x] = src[x];
      }
      plan.partial(block.data(), kp, corner.data());
      zigzag_take(corner.data(), kp, k, scan.data());
      const float scale =
          config_.normalize ? 1.0f / static_cast<float>(B) : 1.0f;
      for (std::size_t c = 0; c < k; ++c)
        out[(c * n + by) * n + bx] = scan[c] * scale;
    }
  }
}

void FeatureTensorExtractor::extract_fast(const layout::MaskImage& raster,
                                          std::span<float> out) const {
  const std::size_t n = config_.blocks_per_side;
  const std::size_t k = config_.coeffs;
  const std::size_t B = block_px(raster);
  const std::size_t width = raster.width();
  const DctPlan& plan = plan_for(B);
  const std::size_t kp = cached_corner_for_prefix(B, k);

  // The zig-zag prefix, resolved once per extract instead of once per
  // block (zigzag_take re-derives the walk — and allocates — per call).
  // Its row extent also caps the pass-1 work: the first k positions of a
  // kp x kp corner rarely reach row kp-1 (16 coefficients of a 6x6 corner
  // top out at row 4), and rows the scan never reads need not be
  // transformed at all.
  thread_local std::vector<std::pair<std::size_t, std::size_t>> order;
  thread_local std::size_t order_kp = 0;
  if (order_kp != kp) {
    order = zigzag_order(kp);
    order_kp = kp;
  }
  std::size_t mp = 0;
  for (std::size_t c = 0; c < k; ++c)
    mp = std::max(mp, order[c].first + 1);

  // Thread-local scratch: extract_batch runs this on pool threads; each
  // buffer is fully (re)written per call, and resize() is a no-op once
  // warm, so batches run allocation-free.
  thread_local std::vector<float> band, basis_t, corner;
  band.resize(mp * width);
  basis_t.resize(B * DctPlan::kTransposedStride);
  corner.resize(kp * kp);
  plan.transpose_corner_basis(kp, basis_t.data());

  const float scale = config_.normalize ? 1.0f / static_cast<float>(B) : 1.0f;
  for (std::size_t by = 0; by < n; ++by) {
    // One column pass over the whole band of B raster rows replaces the
    // per-block gather + column pass of the reference path.
    plan.partial_band(raster.row(by * B), width, mp, band.data());
    for (std::size_t bx = 0; bx < n; ++bx) {
      plan.partial_corner_from_band(band.data(), width, bx * B, kp, mp,
                                    basis_t.data(), corner.data());
      for (std::size_t c = 0; c < k; ++c)
        out[(c * n + by) * n + bx] =
            corner[order[c].first * kp + order[c].second] * scale;
    }
  }
}

void FeatureTensorExtractor::extract_into(const layout::Clip& clip,
                                          std::span<float> out) const {
  if (runtime::reference_mode()) {
    extract_into(layout::rasterize(clip, config_.nm_per_px), out);
    return;
  }
  // Reuse one raster buffer per thread: rasterizing a serving window used
  // to allocate (and fault in) a few hundred KB per clip, which dominated
  // the profile alongside the DCT.
  thread_local layout::MaskImage raster;
  layout::rasterize_into(clip, config_.nm_per_px, raster);
  extract_into(raster, out);
}

FeatureTensor FeatureTensorExtractor::extract(
    const layout::MaskImage& raster) const {
  const std::size_t n = config_.blocks_per_side;
  const std::size_t k = config_.coeffs;
  FeatureTensor out;
  out.n = n;
  out.k = k;
  out.data.assign(k * n * n, 0.0f);
  extract_into(raster, out.data);
  return out;
}

FeatureTensor FeatureTensorExtractor::extract(const layout::Clip& clip) const {
  const std::size_t n = config_.blocks_per_side;
  const std::size_t k = config_.coeffs;
  FeatureTensor out;
  out.n = n;
  out.k = k;
  out.data.assign(k * n * n, 0.0f);
  extract_into(clip, out.data);  // clip overload reuses the raster buffer
  return out;
}

std::vector<FeatureTensor> FeatureTensorExtractor::extract_batch(
    std::span<const layout::Clip> clips) const {
  HSDL_TRACE_SPAN("fte.extract_batch");
  std::vector<FeatureTensor> out(clips.size());
  parallel_for(0, clips.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = extract(clips[i]);
  });
  return out;
}

layout::MaskImage FeatureTensorExtractor::reconstruct(
    const FeatureTensor& tensor, std::size_t block_px_arg) const {
  const std::size_t n = tensor.n;
  const std::size_t k = tensor.k;
  const std::size_t B = block_px_arg;
  HSDL_CHECK(n > 0 && k > 0 && B > 0);
  HSDL_CHECK(tensor.data.size() == k * n * n);
  HSDL_CHECK(k <= B * B);

  const DctPlan& plan = plan_for(B);
  const std::size_t kp = cached_corner_for_prefix(B, k);

  layout::MaskImage img(n * B, n * B, config_.nm_per_px);
  std::vector<float> scan(k);
  std::vector<float> corner(kp * kp);
  std::vector<float> block(B * B);
  for (std::size_t by = 0; by < n; ++by) {
    for (std::size_t bx = 0; bx < n; ++bx) {
      const float unscale =
          config_.normalize ? static_cast<float>(B) : 1.0f;
      for (std::size_t c = 0; c < k; ++c)
        scan[c] = tensor.at(c, by, bx) * unscale;
      zigzag_put(scan.data(), k, kp, corner.data());
      plan.inverse_partial(corner.data(), kp, block.data());
      for (std::size_t y = 0; y < B; ++y) {
        float* dst = img.row(by * B + y) + bx * B;
        const float* src = &block[y * B];
        for (std::size_t x = 0; x < B; ++x) dst[x] = src[x];
      }
    }
  }
  return img;
}

}  // namespace hsdl::fte

#include "fte/zigzag.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hsdl::fte {

std::vector<std::pair<std::size_t, std::size_t>> zigzag_order(
    std::size_t block_size) {
  HSDL_CHECK(block_size > 0);
  const std::size_t B = block_size;
  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(B * B);
  // Walk anti-diagonals d = row + col; alternate direction per diagonal
  // (standard JPEG order: first step goes right, i.e. diagonal 1 starts at
  // (0,1) and moves down-left).
  for (std::size_t d = 0; d <= 2 * (B - 1); ++d) {
    const std::size_t lo = d >= B ? d - B + 1 : 0;
    const std::size_t hi = std::min(d, B - 1);
    if (d % 2 == 0) {
      // up-right: row decreasing
      for (std::size_t row = hi + 1; row-- > lo;)
        order.emplace_back(row, d - row);
    } else {
      // down-left: row increasing
      for (std::size_t row = lo; row <= hi; ++row)
        order.emplace_back(row, d - row);
    }
  }
  return order;
}

std::size_t zigzag_prefix_in_corner(std::size_t block_size, std::size_t kp) {
  const auto order = zigzag_order(block_size);
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i].first >= kp || order[i].second >= kp) return i;
  return order.size();
}

std::size_t corner_for_prefix(std::size_t block_size, std::size_t k) {
  HSDL_CHECK(k >= 1 && k <= block_size * block_size);
  for (std::size_t kp = 1; kp <= block_size; ++kp)
    if (zigzag_prefix_in_corner(block_size, kp) >= k) return kp;
  return block_size;
}

void zigzag_take(const float* coeffs, std::size_t side, std::size_t k,
                 float* out) {
  const auto order = zigzag_order(side);
  HSDL_CHECK(k <= order.size());
  for (std::size_t i = 0; i < k; ++i)
    out[i] = coeffs[order[i].first * side + order[i].second];
}

void zigzag_put(const float* scan, std::size_t k, std::size_t side,
                float* coeffs) {
  const auto order = zigzag_order(side);
  HSDL_CHECK(k <= order.size());
  std::fill(coeffs, coeffs + side * side, 0.0f);
  for (std::size_t i = 0; i < k; ++i)
    coeffs[order[i].first * side + order[i].second] = scan[i];
}

}  // namespace hsdl::fte

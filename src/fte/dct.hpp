// 2-D discrete cosine transform over square blocks.
//
// Implements the paper's Step 2 (Section 3). We use the orthonormal DCT-II
// so the transform is exactly invertible by its transpose (DCT-III); the
// paper's un-normalized formula differs from this only by a fixed per-
// coefficient scale, which is irrelevant to any downstream learner and
// buys the clean "clip can be recovered from the tensor" property.
//
// Separable evaluation through a precomputed basis matrix gives
// O(B^3) per block; `partial()` computes only the low-frequency
// top-left kp x kp corner in O(kp * B^2), which is what feature tensor
// extraction needs (the zig-zag keeps only the first k coefficients).
#pragma once

#include <cstddef>
#include <vector>

namespace hsdl::fte {

/// Precomputed DCT plan for a fixed block size B. Immutable after
/// construction: every member function is const and touches no shared
/// state, so one plan can serve many threads concurrently (batched
/// feature extraction parallelizes over clips against a single plan).
class DctPlan {
 public:
  explicit DctPlan(std::size_t block_size);

  std::size_t block_size() const { return block_; }

  /// Forward 2-D orthonormal DCT-II. `in` and `out` are B*B row-major.
  void forward(const float* in, float* out) const;

  /// Inverse (DCT-III); exact inverse of forward().
  void inverse(const float* in, float* out) const;

  /// Partial forward: computes only coefficients (m, n) with m < kp and
  /// n < kp, written to `out` as kp x kp row-major. Identical values to the
  /// corresponding corner of forward().
  void partial(const float* in, std::size_t kp, float* out) const;

  /// Inverse from a partial kp x kp corner (higher coefficients zero).
  void inverse_partial(const float* in, std::size_t kp, float* out) const;

  // --- Banded fast path -----------------------------------------------
  // Feature extraction runs partial() on every BxB block of a raster. The
  // column pass (pass 1) only ever combines pixels within one raster band
  // of B rows, so it can run once over the whole band instead of once per
  // gathered block copy; the row pass then reads its block's columns out
  // of the band. Each output element accumulates the same terms in the
  // same order as partial(), so the results are bitwise identical — the
  // band just removes the per-block gather and vectorizes across columns
  // (element-independent multiply+add, which cannot change per-element
  // rounding). For kp <= 8 pass 1 runs register-blocked: all kp partial
  // sums live in registers while the band streams by once, instead of kp
  // sweeps over the band.

  /// Row stride of the zero-padded transposed basis used by pass 2 (and
  /// its lane count: one 8-wide vector covers every n of a kp <= 8
  /// corner).
  static constexpr std::size_t kTransposedStride = 8;

  /// Pass 1 over a band: rows is B x width row-major (B = block_size()),
  /// tmp is kp x width with tmp[m*width + x] = sum_y C[m][y]*rows[y*width+x].
  /// Callers that only consume a prefix of frequency rows (the zig-zag
  /// prefix rarely needs the full corner height) can pass that smaller
  /// row count as kp.
  void partial_band(const float* rows, std::size_t width, std::size_t kp,
                    float* tmp) const;

  /// Pass 2 for the block whose columns start at x0: out[m*kp + n] =
  /// sum_x tmp[m*width + x0 + x] * C[n][x], accumulated x-ascending like
  /// partial(), for the first `mp` frequency rows (mp <= kp; rows beyond
  /// mp are left untouched). `basis_t` comes from
  /// transpose_corner_basis(). Requires kp <= 8.
  void partial_corner_from_band(const float* tmp, std::size_t width,
                                std::size_t x0, std::size_t kp,
                                std::size_t mp, const float* basis_t,
                                float* out) const;

  /// Fills bt (B x kTransposedStride row-major, zero-padded) with
  /// bt[x*kTransposedStride + n] = basis[n][x] for n < kp: the transposed
  /// corner basis pass 2 reads with stride-1 x-major access. Requires
  /// kp <= 8.
  void transpose_corner_basis(std::size_t kp, float* bt) const;

 private:
  std::size_t block_;
  // basis_[m * B + x] = s_m * cos(pi/B * (x + 0.5) * m)
  std::vector<float> basis_;
};

}  // namespace hsdl::fte

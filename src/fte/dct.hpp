// 2-D discrete cosine transform over square blocks.
//
// Implements the paper's Step 2 (Section 3). We use the orthonormal DCT-II
// so the transform is exactly invertible by its transpose (DCT-III); the
// paper's un-normalized formula differs from this only by a fixed per-
// coefficient scale, which is irrelevant to any downstream learner and
// buys the clean "clip can be recovered from the tensor" property.
//
// Separable evaluation through a precomputed basis matrix gives
// O(B^3) per block; `partial()` computes only the low-frequency
// top-left kp x kp corner in O(kp * B^2), which is what feature tensor
// extraction needs (the zig-zag keeps only the first k coefficients).
#pragma once

#include <cstddef>
#include <vector>

namespace hsdl::fte {

/// Precomputed DCT plan for a fixed block size B. Immutable after
/// construction: every member function is const and touches no shared
/// state, so one plan can serve many threads concurrently (batched
/// feature extraction parallelizes over clips against a single plan).
class DctPlan {
 public:
  explicit DctPlan(std::size_t block_size);

  std::size_t block_size() const { return block_; }

  /// Forward 2-D orthonormal DCT-II. `in` and `out` are B*B row-major.
  void forward(const float* in, float* out) const;

  /// Inverse (DCT-III); exact inverse of forward().
  void inverse(const float* in, float* out) const;

  /// Partial forward: computes only coefficients (m, n) with m < kp and
  /// n < kp, written to `out` as kp x kp row-major. Identical values to the
  /// corresponding corner of forward().
  void partial(const float* in, std::size_t kp, float* out) const;

  /// Inverse from a partial kp x kp corner (higher coefficients zero).
  void inverse_partial(const float* in, std::size_t kp, float* out) const;

 private:
  std::size_t block_;
  // basis_[m * B + x] = s_m * cos(pi/B * (x + 0.5) * m)
  std::vector<float> basis_;
};

}  // namespace hsdl::fte

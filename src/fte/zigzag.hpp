// JPEG-style zig-zag scan order (paper Step 3, reference [12]).
//
// Orders the B x B DCT coefficients so that increasing scan index means
// increasing spatial frequency; truncating the scan keeps the most
// informative low-frequency content.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace hsdl::fte {

/// (row, col) pairs of the zig-zag traversal of a B x B block.
/// zigzag_order(B)[i] is the coefficient holding scan position i.
std::vector<std::pair<std::size_t, std::size_t>> zigzag_order(
    std::size_t block_size);

/// Number of leading zig-zag positions that fit inside the top-left
/// kp x kp corner — i.e. the largest prefix length computable from a
/// partial DCT of size kp.
std::size_t zigzag_prefix_in_corner(std::size_t block_size, std::size_t kp);

/// Smallest corner size kp such that the first `k` zig-zag positions lie
/// within the top-left kp x kp corner of a B x B block.
std::size_t corner_for_prefix(std::size_t block_size, std::size_t k);

/// Copies the first `k` zig-zag coefficients out of a row-major
/// `side x side` coefficient block (side = B for a full DCT or kp for a
/// partial corner — positions outside the stored corner must not be asked
/// for; see corner_for_prefix).
void zigzag_take(const float* coeffs, std::size_t side, std::size_t k,
                 float* out);

/// Scatter-back: writes `k` scan-ordered values into a zeroed row-major
/// `side x side` block (inverse of zigzag_take).
void zigzag_put(const float* scan, std::size_t k, std::size_t side,
                float* coeffs);

}  // namespace hsdl::fte

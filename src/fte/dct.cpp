#include "fte/dct.hpp"

#include <cmath>
#include <numbers>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define HSDL_DCT_AVX2 1
#endif

#include "common/check.hpp"
#include "common/cpuinfo.hpp"

namespace hsdl::fte {

DctPlan::DctPlan(std::size_t block_size) : block_(block_size) {
  HSDL_CHECK(block_size > 0);
  const auto B = block_;
  basis_.resize(B * B);
  const double inv_b = 1.0 / static_cast<double>(B);
  for (std::size_t m = 0; m < B; ++m) {
    const double scale =
        m == 0 ? std::sqrt(inv_b) : std::sqrt(2.0 * inv_b);
    for (std::size_t x = 0; x < B; ++x) {
      basis_[m * B + x] = static_cast<float>(
          scale * std::cos(std::numbers::pi * inv_b *
                           (static_cast<double>(x) + 0.5) *
                           static_cast<double>(m)));
    }
  }
}

namespace {

/// Per-call scratch for the separable passes: stack storage for the
/// common small kp x B case, heap beyond. Keeping scratch out of the plan
/// is what makes concurrent partial()/inverse_partial() calls on one
/// plan safe.
class Scratch {
 public:
  explicit Scratch(std::size_t n) {
    if (n > kStack) {
      heap_.resize(n);
      ptr_ = heap_.data();
    }
  }
  float* data() { return ptr_; }

 private:
  static constexpr std::size_t kStack = 4096;
  float stack_[kStack];
  std::vector<float> heap_;
  float* ptr_ = stack_;
};

/// dst[x] += c * src[x]. Separate multiply + add in both variants (the
/// AVX2 target deliberately excludes FMA) so every element rounds like the
/// scalar reference loop in partial().
void band_axpy_scalar(float* dst, const float* src, float c, std::size_t n) {
  for (std::size_t x = 0; x < n; ++x) dst[x] += c * src[x];
}

#ifdef HSDL_DCT_AVX2
__attribute__((target("avx2"))) void band_axpy_avx2(float* dst,
                                                    const float* src, float c,
                                                    std::size_t n) {
  const __m256 cv = _mm256_set1_ps(c);
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const __m256 prod = _mm256_mul_ps(cv, _mm256_loadu_ps(src + x));
    _mm256_storeu_ps(dst + x, _mm256_add_ps(_mm256_loadu_ps(dst + x), prod));
  }
  for (; x < n; ++x) dst[x] += c * src[x];
}
#endif

inline void band_axpy(float* dst, const float* src, float c, std::size_t n) {
#ifdef HSDL_DCT_AVX2
  if (cpu::has_avx2_fma()) {
    band_axpy_avx2(dst, src, c, n);
    return;
  }
#endif
  band_axpy_scalar(dst, src, c, n);
}

// ---------------------------------------------------------------------------
// Register-blocked pass 1 for the serving corner sizes (kp <= 8).
//
// The per-m axpy sweep above streams the band once per frequency row —
// kp full passes over B x width pixels. The blocked kernels below walk
// the band once total: for each column tile they hold all kp partial
// sums in registers while the B source rows stream by. Per output
// element the arithmetic is unchanged — ascending y, one multiply and
// one add per term — so the result is bitwise identical to the sweep;
// only the loop nest (and the number of source loads) differs.

template <std::size_t KP>
void band_pass1_scalar(const float* rows, std::size_t width, std::size_t B,
                       const float* basis, float* tmp) {
  for (std::size_t x = 0; x < width; ++x) {
    float acc[KP] = {};
    for (std::size_t y = 0; y < B; ++y) {
      const float v = rows[y * width + x];
      for (std::size_t m = 0; m < KP; ++m) acc[m] += basis[m * B + y] * v;
    }
    for (std::size_t m = 0; m < KP; ++m) tmp[m * width + x] = acc[m];
  }
}

#ifdef HSDL_DCT_AVX2
template <std::size_t KP>
__attribute__((target("avx2"))) void band_pass1_avx2(const float* rows,
                                                     std::size_t width,
                                                     std::size_t B,
                                                     const float* basis,
                                                     float* tmp) {
  std::size_t x = 0;
  // Two tiles per sweep where the register budget allows (2*KP partial
  // sums + two source vectors + one broadcast must fit in 16 ymm regs):
  // each basis broadcast then feeds 16 lanes instead of 8.
  if constexpr (KP <= 6) {
    for (; x + 16 <= width; x += 16) {
      __m256 acc0[KP], acc1[KP];
      for (std::size_t m = 0; m < KP; ++m) {
        acc0[m] = _mm256_setzero_ps();
        acc1[m] = _mm256_setzero_ps();
      }
      for (std::size_t y = 0; y < B; ++y) {
        const __m256 v0 = _mm256_loadu_ps(rows + y * width + x);
        const __m256 v1 = _mm256_loadu_ps(rows + y * width + x + 8);
        for (std::size_t m = 0; m < KP; ++m) {
          const __m256 b = _mm256_set1_ps(basis[m * B + y]);
          acc0[m] = _mm256_add_ps(acc0[m], _mm256_mul_ps(b, v0));
          acc1[m] = _mm256_add_ps(acc1[m], _mm256_mul_ps(b, v1));
        }
      }
      for (std::size_t m = 0; m < KP; ++m) {
        _mm256_storeu_ps(tmp + m * width + x, acc0[m]);
        _mm256_storeu_ps(tmp + m * width + x + 8, acc1[m]);
      }
    }
  }
  for (; x + 8 <= width; x += 8) {
    __m256 acc[KP];
    for (std::size_t m = 0; m < KP; ++m) acc[m] = _mm256_setzero_ps();
    for (std::size_t y = 0; y < B; ++y) {
      const __m256 v = _mm256_loadu_ps(rows + y * width + x);
      for (std::size_t m = 0; m < KP; ++m) {
        const __m256 prod = _mm256_mul_ps(_mm256_set1_ps(basis[m * B + y]), v);
        acc[m] = _mm256_add_ps(acc[m], prod);
      }
    }
    for (std::size_t m = 0; m < KP; ++m)
      _mm256_storeu_ps(tmp + m * width + x, acc[m]);
  }
  for (; x < width; ++x) {
    float acc[KP] = {};
    for (std::size_t y = 0; y < B; ++y) {
      const float v = rows[y * width + x];
      for (std::size_t m = 0; m < KP; ++m) acc[m] += basis[m * B + y] * v;
    }
    for (std::size_t m = 0; m < KP; ++m) tmp[m * width + x] = acc[m];
  }
}
#endif

using BandPass1Fn = void (*)(const float*, std::size_t, std::size_t,
                             const float*, float*);

template <std::size_t KP>
constexpr BandPass1Fn pass1_scalar_fn() {
  return &band_pass1_scalar<KP>;
}

BandPass1Fn select_pass1(std::size_t kp) {
#ifdef HSDL_DCT_AVX2
  if (cpu::has_avx2_fma()) {
    switch (kp) {
      case 1: return &band_pass1_avx2<1>;
      case 2: return &band_pass1_avx2<2>;
      case 3: return &band_pass1_avx2<3>;
      case 4: return &band_pass1_avx2<4>;
      case 5: return &band_pass1_avx2<5>;
      case 6: return &band_pass1_avx2<6>;
      case 7: return &band_pass1_avx2<7>;
      default: return &band_pass1_avx2<8>;
    }
  }
#endif
  switch (kp) {
    case 1: return pass1_scalar_fn<1>();
    case 2: return pass1_scalar_fn<2>();
    case 3: return pass1_scalar_fn<3>();
    case 4: return pass1_scalar_fn<4>();
    case 5: return pass1_scalar_fn<5>();
    case 6: return pass1_scalar_fn<6>();
    case 7: return pass1_scalar_fn<7>();
    default: return pass1_scalar_fn<8>();
  }
}

// Pass 2 twins: one 8-lane accumulator per frequency row covers every n
// at once (basis_t rows are zero-padded to kTransposedStride), and one
// kernel call transforms a whole block — all MP rows share each basis
// load and the per-row call overhead disappears. Lanes are independent
// and each (m, n) output accumulates ascending-x multiply+add exactly
// like the scalar dot in partial(), so scalar and AVX2 agree bitwise.

template <std::size_t MP>
void corner_pass2_scalar(const float* tmp, std::size_t width, std::size_t x0,
                         std::size_t B, std::size_t kp, const float* basis_t,
                         float* out) {
  float acc[MP][8] = {};
  for (std::size_t x = 0; x < B; ++x) {
    const float* bt = basis_t + x * DctPlan::kTransposedStride;
    for (std::size_t m = 0; m < MP; ++m) {
      const float t = tmp[m * width + x0 + x];
      for (std::size_t n = 0; n < 8; ++n) acc[m][n] += t * bt[n];
    }
  }
  for (std::size_t m = 0; m < MP; ++m)
    for (std::size_t n = 0; n < kp; ++n) out[m * kp + n] = acc[m][n];
}

#ifdef HSDL_DCT_AVX2
template <std::size_t MP>
__attribute__((target("avx2"))) void corner_pass2_avx2(
    const float* tmp, std::size_t width, std::size_t x0, std::size_t B,
    std::size_t kp, const float* basis_t, float* out) {
  __m256 acc[MP];
  for (std::size_t m = 0; m < MP; ++m) acc[m] = _mm256_setzero_ps();
  for (std::size_t x = 0; x < B; ++x) {
    const __m256 bt =
        _mm256_loadu_ps(basis_t + x * DctPlan::kTransposedStride);
    for (std::size_t m = 0; m < MP; ++m) {
      const __m256 prod =
          _mm256_mul_ps(_mm256_set1_ps(tmp[m * width + x0 + x]), bt);
      acc[m] = _mm256_add_ps(acc[m], prod);
    }
  }
  alignas(32) float lanes[8];
  for (std::size_t m = 0; m < MP; ++m) {
    _mm256_store_ps(lanes, acc[m]);
    for (std::size_t n = 0; n < kp; ++n) out[m * kp + n] = lanes[n];
  }
}
#endif

using CornerPass2Fn = void (*)(const float*, std::size_t, std::size_t,
                               std::size_t, std::size_t, const float*,
                               float*);

CornerPass2Fn select_pass2(std::size_t mp) {
#ifdef HSDL_DCT_AVX2
  if (cpu::has_avx2_fma()) {
    switch (mp) {
      case 1: return &corner_pass2_avx2<1>;
      case 2: return &corner_pass2_avx2<2>;
      case 3: return &corner_pass2_avx2<3>;
      case 4: return &corner_pass2_avx2<4>;
      case 5: return &corner_pass2_avx2<5>;
      case 6: return &corner_pass2_avx2<6>;
      case 7: return &corner_pass2_avx2<7>;
      default: return &corner_pass2_avx2<8>;
    }
  }
#endif
  switch (mp) {
    case 1: return &corner_pass2_scalar<1>;
    case 2: return &corner_pass2_scalar<2>;
    case 3: return &corner_pass2_scalar<3>;
    case 4: return &corner_pass2_scalar<4>;
    case 5: return &corner_pass2_scalar<5>;
    case 6: return &corner_pass2_scalar<6>;
    case 7: return &corner_pass2_scalar<7>;
    default: return &corner_pass2_scalar<8>;
  }
}

}  // namespace

// out = C * in * C^T, evaluated as tmp = in * C^T (rows transformed),
// then out = C * tmp (columns transformed).
void DctPlan::forward(const float* in, float* out) const {
  partial(in, block_, out);
}

void DctPlan::partial(const float* in, std::size_t kp, float* out) const {
  HSDL_CHECK(kp > 0 && kp <= block_);
  const std::size_t B = block_;
  Scratch scratch(kp * B);
  float* tmp = scratch.data();  // kp x B: rows = frequency m, cols = x
  // tmp[m][x] = sum_y C[m][y] * in[y][x]  (transform columns)
  for (std::size_t m = 0; m < kp; ++m) {
    const float* cm = &basis_[m * B];
    for (std::size_t x = 0; x < B; ++x) tmp[m * B + x] = 0.0f;
    for (std::size_t y = 0; y < B; ++y) {
      const float c = cm[y];
      const float* row = &in[y * B];
      float* trow = &tmp[m * B];
      for (std::size_t x = 0; x < B; ++x) trow[x] += c * row[x];
    }
  }
  // out[m][n] = sum_x tmp[m][x] * C[n][x]  (transform rows)
  for (std::size_t m = 0; m < kp; ++m) {
    const float* trow = &tmp[m * B];
    for (std::size_t n = 0; n < kp; ++n) {
      const float* cn = &basis_[n * B];
      float acc = 0.0f;
      for (std::size_t x = 0; x < B; ++x) acc += trow[x] * cn[x];
      out[m * kp + n] = acc;
    }
  }
}

void DctPlan::partial_band(const float* rows, std::size_t width,
                           std::size_t kp, float* tmp) const {
  HSDL_CHECK(kp > 0 && kp <= block_);
  const std::size_t B = block_;
  if (kp <= 8) {
    select_pass1(kp)(rows, width, B, basis_.data(), tmp);
    return;
  }
  // Wide corners (only reachable from exotic configs): the original
  // per-m axpy sweep, same y-ascending accumulation per element.
  for (std::size_t m = 0; m < kp; ++m) {
    const float* cm = &basis_[m * B];
    float* trow = tmp + m * width;
    for (std::size_t x = 0; x < width; ++x) trow[x] = 0.0f;
    for (std::size_t y = 0; y < B; ++y)
      band_axpy(trow, rows + y * width, cm[y], width);
  }
}

void DctPlan::partial_corner_from_band(const float* tmp, std::size_t width,
                                       std::size_t x0, std::size_t kp,
                                       std::size_t mp, const float* basis_t,
                                       float* out) const {
  const std::size_t B = block_;
  HSDL_CHECK(kp > 0 && kp <= 8 && mp > 0 && mp <= kp);
  select_pass2(mp)(tmp, width, x0, B, kp, basis_t, out);
}

void DctPlan::transpose_corner_basis(std::size_t kp, float* bt) const {
  HSDL_CHECK(kp > 0 && kp <= 8 && kp <= block_);
  const std::size_t B = block_;
  for (std::size_t x = 0; x < B; ++x)
    for (std::size_t n = 0; n < kTransposedStride; ++n)
      bt[x * kTransposedStride + n] = n < kp ? basis_[n * B + x] : 0.0f;
}

void DctPlan::inverse(const float* in, float* out) const {
  inverse_partial(in, block_, out);
}

void DctPlan::inverse_partial(const float* in, std::size_t kp,
                              float* out) const {
  HSDL_CHECK(kp > 0 && kp <= block_);
  const std::size_t B = block_;
  Scratch scratch(kp * B);
  float* tmp = scratch.data();  // kp x B: tmp[m][x] = sum_n in[m][n] C[n][x]
  for (std::size_t m = 0; m < kp; ++m) {
    float* trow = &tmp[m * B];
    for (std::size_t x = 0; x < B; ++x) trow[x] = 0.0f;
    for (std::size_t n = 0; n < kp; ++n) {
      const float v = in[m * kp + n];
      if (v == 0.0f) continue;
      const float* cn = &basis_[n * B];
      for (std::size_t x = 0; x < B; ++x) trow[x] += v * cn[x];
    }
  }
  // out[y][x] = sum_m C[m][y] * tmp[m][x]
  for (std::size_t i = 0; i < B * B; ++i) out[i] = 0.0f;
  for (std::size_t m = 0; m < kp; ++m) {
    const float* cm = &basis_[m * B];
    const float* trow = &tmp[m * B];
    for (std::size_t y = 0; y < B; ++y) {
      const float c = cm[y];
      if (c == 0.0f) continue;
      float* orow = &out[y * B];
      for (std::size_t x = 0; x < B; ++x) orow[x] += c * trow[x];
    }
  }
}

}  // namespace hsdl::fte

#include "fte/dct.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace hsdl::fte {

DctPlan::DctPlan(std::size_t block_size) : block_(block_size) {
  HSDL_CHECK(block_size > 0);
  const auto B = block_;
  basis_.resize(B * B);
  const double inv_b = 1.0 / static_cast<double>(B);
  for (std::size_t m = 0; m < B; ++m) {
    const double scale =
        m == 0 ? std::sqrt(inv_b) : std::sqrt(2.0 * inv_b);
    for (std::size_t x = 0; x < B; ++x) {
      basis_[m * B + x] = static_cast<float>(
          scale * std::cos(std::numbers::pi * inv_b *
                           (static_cast<double>(x) + 0.5) *
                           static_cast<double>(m)));
    }
  }
}

namespace {

/// Per-call scratch for the separable passes: stack storage for the
/// common small kp x B case, heap beyond. Keeping scratch out of the plan
/// is what makes concurrent partial()/inverse_partial() calls on one
/// plan safe.
class Scratch {
 public:
  explicit Scratch(std::size_t n) {
    if (n > kStack) {
      heap_.resize(n);
      ptr_ = heap_.data();
    }
  }
  float* data() { return ptr_; }

 private:
  static constexpr std::size_t kStack = 4096;
  float stack_[kStack];
  std::vector<float> heap_;
  float* ptr_ = stack_;
};

}  // namespace

// out = C * in * C^T, evaluated as tmp = in * C^T (rows transformed),
// then out = C * tmp (columns transformed).
void DctPlan::forward(const float* in, float* out) const {
  partial(in, block_, out);
}

void DctPlan::partial(const float* in, std::size_t kp, float* out) const {
  HSDL_CHECK(kp > 0 && kp <= block_);
  const std::size_t B = block_;
  Scratch scratch(kp * B);
  float* tmp = scratch.data();  // kp x B: rows = frequency m, cols = x
  // tmp[m][x] = sum_y C[m][y] * in[y][x]  (transform columns)
  for (std::size_t m = 0; m < kp; ++m) {
    const float* cm = &basis_[m * B];
    for (std::size_t x = 0; x < B; ++x) tmp[m * B + x] = 0.0f;
    for (std::size_t y = 0; y < B; ++y) {
      const float c = cm[y];
      const float* row = &in[y * B];
      float* trow = &tmp[m * B];
      for (std::size_t x = 0; x < B; ++x) trow[x] += c * row[x];
    }
  }
  // out[m][n] = sum_x tmp[m][x] * C[n][x]  (transform rows)
  for (std::size_t m = 0; m < kp; ++m) {
    const float* trow = &tmp[m * B];
    for (std::size_t n = 0; n < kp; ++n) {
      const float* cn = &basis_[n * B];
      float acc = 0.0f;
      for (std::size_t x = 0; x < B; ++x) acc += trow[x] * cn[x];
      out[m * kp + n] = acc;
    }
  }
}

void DctPlan::inverse(const float* in, float* out) const {
  inverse_partial(in, block_, out);
}

void DctPlan::inverse_partial(const float* in, std::size_t kp,
                              float* out) const {
  HSDL_CHECK(kp > 0 && kp <= block_);
  const std::size_t B = block_;
  Scratch scratch(kp * B);
  float* tmp = scratch.data();  // kp x B: tmp[m][x] = sum_n in[m][n] C[n][x]
  for (std::size_t m = 0; m < kp; ++m) {
    float* trow = &tmp[m * B];
    for (std::size_t x = 0; x < B; ++x) trow[x] = 0.0f;
    for (std::size_t n = 0; n < kp; ++n) {
      const float v = in[m * kp + n];
      if (v == 0.0f) continue;
      const float* cn = &basis_[n * B];
      for (std::size_t x = 0; x < B; ++x) trow[x] += v * cn[x];
    }
  }
  // out[y][x] = sum_m C[m][y] * tmp[m][x]
  for (std::size_t i = 0; i < B * B; ++i) out[i] = 0.0f;
  for (std::size_t m = 0; m < kp; ++m) {
    const float* cm = &basis_[m * B];
    const float* trow = &tmp[m * B];
    for (std::size_t y = 0; y < B; ++y) {
      const float c = cm[y];
      if (c == 0.0f) continue;
      float* orow = &out[y * B];
      for (std::size_t x = 0; x < B; ++x) orow[x] += c * trow[x];
    }
  }
}

}  // namespace hsdl::fte

// Feature tensor generation (paper Section 3).
//
// A clip raster of (n*B) x (n*B) pixels is divided into n x n blocks of
// B x B pixels; each block is DCT-transformed, zig-zag scanned, and
// truncated to its first k coefficients. The results are reassembled with
// block positions preserved, yielding a k x n x n tensor (channel-major:
// channel c holds the c-th zig-zag coefficient of every block). The
// transform is approximately invertible: reconstruct() inverts exactly the
// retained coefficients and zeroes the discarded high frequencies.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "fte/dct.hpp"
#include "layout/clip.hpp"
#include "layout/raster.hpp"

namespace hsdl::fte {

/// k x n x n feature tensor in channel-major (CHW) layout, ready to be the
/// input feature map stack of a CNN.
struct FeatureTensor {
  std::size_t n = 0;  ///< blocks per side
  std::size_t k = 0;  ///< coefficients kept per block (channels)
  std::vector<float> data;  ///< size k*n*n, data[(c*n + by)*n + bx]

  float& at(std::size_t c, std::size_t by, std::size_t bx) {
    return data[(c * n + by) * n + bx];
  }
  float at(std::size_t c, std::size_t by, std::size_t bx) const {
    return data[(c * n + by) * n + bx];
  }
};

struct FeatureTensorConfig {
  std::size_t blocks_per_side = 12;  ///< n; paper: 12
  std::size_t coeffs = 32;           ///< k; channels kept per block
  double nm_per_px = 2.0;  ///< raster pitch; paper: 1 nm/px, see DESIGN.md §5
  /// Divide coefficients by the block side so the DC channel is the block
  /// mean density (in [0, 1]) — keeps CNN input scale O(1) regardless of
  /// raster resolution. reconstruct() undoes the scaling.
  bool normalize = true;
};

/// Extracts feature tensors from clips/rasters; owns the DCT plan, so reuse
/// one extractor across a dataset.
class FeatureTensorExtractor {
 public:
  explicit FeatureTensorExtractor(const FeatureTensorConfig& config = {});

  const FeatureTensorConfig& config() const { return config_; }

  /// Pixels per block side for a given raster width.
  std::size_t block_px(const layout::MaskImage& raster) const;

  /// Extract from a pre-rasterized clip. The raster must be square with a
  /// side divisible by n.
  FeatureTensor extract(const layout::MaskImage& raster) const;

  /// Rasterizes at config().nm_per_px and extracts.
  FeatureTensor extract(const layout::Clip& clip) const;

  /// Extracts directly into caller-owned storage of exactly k*n*n floats,
  /// laid out channel-major like FeatureTensor::data. Allocation-free
  /// except for small per-call DCT scratch; the extract() overloads
  /// delegate here, so results are bitwise identical. Batch pipelines
  /// (the inference engine) point `out` at a slice of their input slab.
  void extract_into(const layout::MaskImage& raster,
                    std::span<float> out) const;

  /// Rasterizes at config().nm_per_px and extracts into `out`.
  void extract_into(const layout::Clip& clip, std::span<float> out) const;

  /// Batched extraction, parallel over clips on the shared thread pool.
  /// Results are index-aligned with `clips` and bitwise identical to
  /// calling extract() serially (each clip is an independent output).
  std::vector<FeatureTensor> extract_batch(
      std::span<const layout::Clip> clips) const;

  /// Inverse: reassembles an approximate raster from a tensor.
  /// `block_px` chooses the output block resolution (use the same value as
  /// extraction for a like-for-like comparison).
  layout::MaskImage reconstruct(const FeatureTensor& tensor,
                                std::size_t block_px) const;

 private:
  const DctPlan& plan_for(std::size_t block) const;

  /// Original per-block path: gathers each block and runs DctPlan::partial
  /// on the copy. Kept as the bitwise oracle for the banded fast path;
  /// reference mode (common/refmode.hpp) forces it, and it also serves
  /// corner cases the band cannot (kp > 8).
  void extract_reference(const layout::MaskImage& raster,
                         std::span<float> out) const;

  /// Banded fast path: one column-pass per raster band, thread-local
  /// scratch, vectorized inner loops. Bitwise identical to the reference
  /// (see DctPlan::partial_band).
  void extract_fast(const layout::MaskImage& raster,
                    std::span<float> out) const;

  FeatureTensorConfig config_;
  // Plans are cached per block size (tests exercise several resolutions).
  // unique_ptr keeps plan addresses stable across cache growth and the
  // mutex makes the lazy insert safe under extract_batch's parallelism;
  // the plans themselves are immutable and shared freely once built.
  // The atomic caches the most recently used plan so the steady state
  // (one block size, many threads) never touches the mutex — the old
  // lock-per-extract was the main scaling bottleneck of extract_batch.
  mutable std::mutex plans_mu_;
  mutable std::vector<std::pair<std::size_t, std::unique_ptr<DctPlan>>>
      plans_;
  mutable std::atomic<const DctPlan*> plan_cache_{nullptr};
};

}  // namespace hsdl::fte

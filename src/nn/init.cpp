#include "nn/init.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hsdl::nn {

void he_normal_init(Tensor& w, std::size_t fan_in, Rng& rng) {
  HSDL_CHECK(fan_in > 0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.normal(0.0, stddev));
}

void glorot_uniform_init(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                         Rng& rng) {
  HSDL_CHECK(fan_in > 0 && fan_out > 0);
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-a, a));
}

}  // namespace hsdl::nn

// Flatten layer: [N, C, H, W] -> [N, C*H*W].
#pragma once

#include "nn/layer.hpp"

namespace hsdl::nn {

class Flatten final : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override {
    return input.reshaped(output_shape(input.shape()));
  }
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace hsdl::nn

// Element-wise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace hsdl::nn {

/// ReLU (paper Equation (5)): max(0, x). The biased-learning proof
/// (Theorem 1) relies on the non-negativity of the penultimate ReLU output.
class Relu final : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override;
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override {
    return input_shape;
  }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Sigmoid — kept for baseline experiments contrasting with ReLU.
class Sigmoid final : public Layer {
 public:
  std::string name() const override { return "sigmoid"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override {
    return input_shape;
  }

 private:
  Tensor output_;  // cached activation
};

}  // namespace hsdl::nn

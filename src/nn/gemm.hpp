// Single-precision GEMM: cache-blocked, packed, and thread-parallel.
//
// C = alpha * op(A) * op(B) + beta * C, row-major, with op = identity or
// transpose. Large problems go through a BLIS-style blocked kernel
// (MC/KC/NC tiling with packed panels and an MR x NR register
// microkernel), parallelized over row panels of C via the shared thread
// pool. Tiny problems fall through to the simple (i, k, j) reference
// kernel, which has lower fixed overhead.
//
// Determinism: the reduction over k is always evaluated in the same
// order for every element of C — threads only split rows of C — so the
// result is bitwise identical for any thread count.
#pragma once

#include <cstddef>

namespace hsdl::nn {

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc);

/// Unblocked single-threaded reference kernel (the pre-blocking
/// implementation). Used for tiny problems, correctness tests, and the
/// blocked-vs-naive benchmark. Same contract as gemm().
void gemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float beta, float* c,
                std::size_t ldc);

/// Convenience: C[mxn] = A[mxk] * B[kxn] (no transposes, alpha=1, beta=0).
void matmul(std::size_t m, std::size_t n, std::size_t k, const float* a,
            const float* b, float* c);

}  // namespace hsdl::nn

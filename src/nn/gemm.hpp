// Minimal single-precision GEMM.
//
// C = alpha * op(A) * op(B) + beta * C, row-major, with op = identity or
// transpose. The kernel orders loops (i, k, j) so the innermost loop
// streams both B and C rows — on the small matrices of this network
// (hundreds per side) that is within a small factor of a tuned BLAS and
// keeps the library dependency-free.
#pragma once

#include <cstddef>

namespace hsdl::nn {

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc);

/// Convenience: C[mxn] = A[mxk] * B[kxn] (no transposes, alpha=1, beta=0).
void matmul(std::size_t m, std::size_t n, std::size_t k, const float* a,
            const float* b, float* c);

}  // namespace hsdl::nn

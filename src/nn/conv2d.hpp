// 2-D convolution layer.
//
// Training (forward/backward) uses im2col + GEMM, which it needs anyway
// for the gradient GEMMs. Inference uses the direct kernels from
// nn/conv_direct.hpp unless reference mode is on (common/refmode.hpp),
// in which case it runs the original im2col + GEMM path.
//
// Implements Equation (4) of the paper: each output map is the sum over
// input channels of 2-D correlations with a kh x kw kernel, plus a bias.
// Zero padding keeps "same" spatial size when padding = kernel/2 (the
// paper's conv layers use 3x3 kernels, stride 1, same padding — Table 1
// output shapes only hold with same padding).
#pragma once

#include <cstddef>

#include "nn/layer.hpp"

namespace hsdl::nn {

struct Conv2dConfig {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;
};

class Conv2d final : public Layer {
 public:
  Conv2d(const Conv2dConfig& config, Rng& rng);

  std::string name() const override;
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override;
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;

  /// Fused conv + ReLU (direct kernel, no im2col): bitwise identical to
  /// infer() followed by Relu::infer() — the ReLU predicate runs inside
  /// the bias epilogue instead of a second pass over a temporary.
  Tensor infer_relu(const Tensor& input) const;
  Tensor infer_relu(const Tensor& input, WorkspaceArena& ws) const;

  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  const Conv2dConfig& config() const { return config_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  std::size_t out_extent(std::size_t in_extent) const;
  Tensor direct_infer(const Tensor& input, WorkspaceArena* ws,
                      bool fuse_relu) const;

  Conv2dConfig config_;
  Param weight_;  // [out_c, in_c * k * k]
  Param bias_;    // [out_c]
  Tensor input_;  // cached for backward
  Tensor cols_;   // cached im2col buffer [N][in_c*k*k][oh*ow]
};

/// im2col: expands input patches into columns.
/// in:  [C, H, W] single sample; out: [C*k*k, oh*ow] row-major.
void im2col(const float* in, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* out);

/// col2im: scatter-adds columns back into an image (inverse of im2col for
/// gradient computation). `out` must be pre-zeroed.
void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* out);

}  // namespace hsdl::nn

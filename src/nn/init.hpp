// Weight initialization schemes.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace hsdl::nn {

/// He-normal: N(0, sqrt(2 / fan_in)) — the standard choice for ReLU nets.
void he_normal_init(Tensor& w, std::size_t fan_in, Rng& rng);

/// Glorot-uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void glorot_uniform_init(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                         Rng& rng);

}  // namespace hsdl::nn

#include "nn/conv_direct.hpp"

#include <algorithm>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define HSDL_CONV_DIRECT_AVX2 1
#endif

#include "common/cpuinfo.hpp"

#define HSDL_RESTRICT __restrict__

namespace hsdl::nn {
namespace {

/// Output index range [*o0, *o1) for kernel offset `k_off` whose input
/// index o*stride + k_off - padding lands inside [0, in_extent). Outputs
/// outside this range would read padding (exact zeros), whose
/// contribution is a bitwise no-op — see the header.
inline void valid_out_range(std::size_t out_extent, std::size_t in_extent,
                            std::size_t k_off, std::size_t stride,
                            std::size_t padding, std::size_t* o0,
                            std::size_t* o1) {
  std::size_t lo = 0;
  if (k_off < padding) lo = (padding - k_off + stride - 1) / stride;
  const long long top = static_cast<long long>(in_extent) - 1 +
                        static_cast<long long>(padding) -
                        static_cast<long long>(k_off);
  if (top < 0) {
    *o0 = *o1 = 0;
    return;
  }
  const std::size_t hi =
      std::min(out_extent, static_cast<std::size_t>(top) / stride + 1);
  *o0 = std::min(lo, hi);
  *o1 = hi;
}

/// Bias + optional ReLU epilogue over one output channel plane. Same
/// arithmetic as the unfused path (bias pass, then Relu::infer's
/// `v > 0 ? v : 0`), just without materializing the intermediate.
inline void bias_relu_epilogue(float* HSDL_RESTRICT plane, std::size_t n,
                               float bias, bool fuse_relu) {
  if (fuse_relu) {
    for (std::size_t j = 0; j < n; ++j) {
      const float v = plane[j] + bias;
      plane[j] = v > 0.0f ? v : 0.0f;
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) plane[j] += bias;
  }
}

// ---------------------------------------------------------------------------
// Stride-1 plane path.
//
// The generic bodies below update each output row tap by tap, but serving
// feature maps are narrow (12 wide): every row update is one partial
// vector plus a scalar tail plus the valid-range bookkeeping, and that
// overhead dominates the arithmetic. The stride-1 path instead copies the
// input into an explicitly padded buffer and gives the accumulator plane
// the SAME row stride pw as the padded input. Then one weight tap updates
// the whole plane with a single contiguous axpy of oh*pw elements — long
// enough to vectorize cleanly. The k-1 lanes per row beyond ow accumulate
// values no one reads (the epilogue copies only the first ow of each row)
// and the axpy may read up to kernel-1 floats past the last input channel,
// which the scratch buffer's slack absorbs.
//
// Bitwise: each real output element still accumulates taps in ascending
// p = (c, ky, kx) order with one multiply + one add per tap, now including
// the padded positions' w * (+0.0) terms — exactly the products the
// im2col + gemm_naive reference adds (its im2col buffer holds +0.0 for
// padding, and it too skips zero weights).

constexpr std::size_t kPadSlack = 16;  // >= kernel; covers the over-read

struct Stride1Scratch {
  std::vector<float> pad;    ///< in_c x ph x pw (+ slack), borders +0.0
  std::vector<float> plane;  ///< oh x pw accumulator, tail lanes garbage
};

Stride1Scratch& stride1_scratch() {
  thread_local Stride1Scratch s;
  return s;
}

/// Fills the padded copy; returns the padded row width pw. Every element
/// is written each call — borders and slack zeroed explicitly, interior
/// rows copied — so the reused scratch never needs a full clear.
std::size_t fill_padded(const float* in, const ConvDirectShape& s,
                        std::vector<float>* pad) {
  const std::size_t ph = s.height + 2 * s.padding;
  const std::size_t pw = s.width + 2 * s.padding;
  const std::size_t p = s.padding;
  const std::size_t total = s.in_channels * ph * pw;
  pad->resize(total + kPadSlack);
  float* base = pad->data();
  for (std::size_t c = 0; c < s.in_channels; ++c) {
    float* img = base + c * ph * pw;
    std::fill(img, img + p * pw, 0.0f);  // top border rows
    for (std::size_t y = 0; y < s.height; ++y) {
      float* dst = img + (y + p) * pw;
      std::fill(dst, dst + p, 0.0f);
      std::copy_n(in + (c * s.height + y) * s.width, s.width, dst + p);
      std::fill(dst + p + s.width, dst + pw, 0.0f);
    }
    std::fill(img + (p + s.height) * pw, img + ph * pw, 0.0f);  // bottom
  }
  std::fill(base + total, base + total + kPadSlack, 0.0f);
  return pw;
}

void conv_plane_scalar(const float* HSDL_RESTRICT pad,
                       const float* HSDL_RESTRICT weight,
                       const float* HSDL_RESTRICT bias,
                       const ConvDirectShape& s, bool fuse_relu,
                       float* HSDL_RESTRICT plane,
                       float* HSDL_RESTRICT out) {
  const std::size_t oh = s.out_height(), ow = s.out_width();
  const std::size_t ph = s.height + 2 * s.padding;
  const std::size_t pw = s.width + 2 * s.padding;
  const std::size_t k = s.kernel;
  const std::size_t kk = s.in_channels * k * k;
  const std::size_t n = oh * pw;
  for (std::size_t oc = 0; oc < s.out_channels; ++oc) {
    for (std::size_t j = 0; j < n; ++j) plane[j] = 0.0f;
    const float* wrow = weight + oc * kk;
    for (std::size_t c = 0; c < s.in_channels; ++c) {
      for (std::size_t ky = 0; ky < k; ++ky) {
        for (std::size_t kx = 0; kx < k; ++kx) {
          const float w = wrow[(c * k + ky) * k + kx];
          if (w == 0.0f) continue;
          const float* HSDL_RESTRICT src = pad + (c * ph + ky) * pw + kx;
          for (std::size_t j = 0; j < n; ++j) plane[j] += w * src[j];
        }
      }
    }
    const float b = bias[oc];
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const float* pr = plane + oy * pw;
      float* orow = out + (oc * oh + oy) * ow;
      if (fuse_relu) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float v = pr[ox] + b;
          orow[ox] = v > 0.0f ? v : 0.0f;
        }
      } else {
        for (std::size_t ox = 0; ox < ow; ++ox) orow[ox] = pr[ox] + b;
      }
    }
  }
}

#ifdef HSDL_CONV_DIRECT_AVX2
__attribute__((target("avx2"))) void conv_plane_avx2(
    const float* HSDL_RESTRICT pad, const float* HSDL_RESTRICT weight,
    const float* HSDL_RESTRICT bias, const ConvDirectShape& s,
    bool fuse_relu, float* HSDL_RESTRICT plane, float* HSDL_RESTRICT out) {
  const std::size_t oh = s.out_height(), ow = s.out_width();
  const std::size_t ph = s.height + 2 * s.padding;
  const std::size_t pw = s.width + 2 * s.padding;
  const std::size_t k = s.kernel;
  const std::size_t kk = s.in_channels * k * k;
  const std::size_t n = oh * pw;
  for (std::size_t oc = 0; oc < s.out_channels; ++oc) {
    const float* wrow = weight + oc * kk;
    // Register-blocked accumulation: each tile of output lanes walks the
    // whole tap list with the partial sums held in ymm registers, so the
    // plane is written exactly once per lane instead of re-loaded and
    // re-stored for every tap. Per output lane the tap order and the
    // separate multiply + add per tap are unchanged, so every lane rounds
    // exactly like the tap-by-tap loop above.
    std::size_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      for (std::size_t c = 0; c < s.in_channels; ++c) {
        for (std::size_t ky = 0; ky < k; ++ky) {
          const float* HSDL_RESTRICT row = pad + (c * ph + ky) * pw + j;
          for (std::size_t kx = 0; kx < k; ++kx) {
            const float w = wrow[(c * k + ky) * k + kx];
            if (w == 0.0f) continue;
            const float* HSDL_RESTRICT src = row + kx;
            const __m256 wv = _mm256_set1_ps(w);
            a0 = _mm256_add_ps(a0, _mm256_mul_ps(wv, _mm256_loadu_ps(src)));
            a1 = _mm256_add_ps(a1,
                               _mm256_mul_ps(wv, _mm256_loadu_ps(src + 8)));
            a2 = _mm256_add_ps(a2,
                               _mm256_mul_ps(wv, _mm256_loadu_ps(src + 16)));
            a3 = _mm256_add_ps(a3,
                               _mm256_mul_ps(wv, _mm256_loadu_ps(src + 24)));
          }
        }
      }
      _mm256_storeu_ps(plane + j, a0);
      _mm256_storeu_ps(plane + j + 8, a1);
      _mm256_storeu_ps(plane + j + 16, a2);
      _mm256_storeu_ps(plane + j + 24, a3);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 a0 = _mm256_setzero_ps();
      for (std::size_t c = 0; c < s.in_channels; ++c) {
        for (std::size_t ky = 0; ky < k; ++ky) {
          const float* HSDL_RESTRICT row = pad + (c * ph + ky) * pw + j;
          for (std::size_t kx = 0; kx < k; ++kx) {
            const float w = wrow[(c * k + ky) * k + kx];
            if (w == 0.0f) continue;
            const __m256 wv = _mm256_set1_ps(w);
            a0 = _mm256_add_ps(a0,
                               _mm256_mul_ps(wv, _mm256_loadu_ps(row + kx)));
          }
        }
      }
      _mm256_storeu_ps(plane + j, a0);
    }
    for (; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t c = 0; c < s.in_channels; ++c) {
        for (std::size_t ky = 0; ky < k; ++ky) {
          for (std::size_t kx = 0; kx < k; ++kx) {
            const float w = wrow[(c * k + ky) * k + kx];
            if (w == 0.0f) continue;
            acc += w * pad[(c * ph + ky) * pw + kx + j];
          }
        }
      }
      plane[j] = acc;
    }
    const float b = bias[oc];
    const __m256 bv = _mm256_set1_ps(b);
    const __m256 zero = _mm256_setzero_ps();
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const float* pr = plane + oy * pw;
      float* orow = out + (oc * oh + oy) * ow;
      if (ow >= 8) {
        // Vector rows; a remainder re-runs one vector shifted to end at
        // ow — the overlapped lanes recompute identical values.
        std::size_t ox = 0;
        for (; ox + 8 <= ow; ox += 8) {
          __m256 v = _mm256_add_ps(_mm256_loadu_ps(pr + ox), bv);
          if (fuse_relu) v = _mm256_max_ps(v, zero);
          _mm256_storeu_ps(orow + ox, v);
        }
        if (ox < ow) {
          __m256 v = _mm256_add_ps(_mm256_loadu_ps(pr + (ow - 8)), bv);
          if (fuse_relu) v = _mm256_max_ps(v, zero);
          _mm256_storeu_ps(orow + (ow - 8), v);
        }
      } else if (fuse_relu) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float v = pr[ox] + b;
          orow[ox] = v > 0.0f ? v : 0.0f;
        }
      } else {
        for (std::size_t ox = 0; ox < ow; ++ox) orow[ox] = pr[ox] + b;
      }
    }
  }
}
#endif

// The scalar and AVX2 bodies are intentionally near-duplicates: the
// target attribute is per-function, and the inner row update must stay
// separate multiply + add in both so the two variants agree bitwise
// lane-for-lane (no FMA anywhere in this file).

void conv_body_scalar(const float* HSDL_RESTRICT in,
                      const float* HSDL_RESTRICT weight,
                      const float* HSDL_RESTRICT bias,
                      const ConvDirectShape& s, bool fuse_relu,
                      float* HSDL_RESTRICT out) {
  const std::size_t oh = s.out_height(), ow = s.out_width();
  const std::size_t kk = s.in_channels * s.kernel * s.kernel;
  for (std::size_t oc = 0; oc < s.out_channels; ++oc) {
    float* plane = out + oc * oh * ow;
    for (std::size_t j = 0; j < oh * ow; ++j) plane[j] = 0.0f;
    const float* wrow = weight + oc * kk;
    for (std::size_t c = 0; c < s.in_channels; ++c) {
      const float* img = in + c * s.height * s.width;
      for (std::size_t ky = 0; ky < s.kernel; ++ky) {
        std::size_t oy0, oy1;
        valid_out_range(oh, s.height, ky, s.stride, s.padding, &oy0, &oy1);
        for (std::size_t kx = 0; kx < s.kernel; ++kx) {
          const float w = wrow[(c * s.kernel + ky) * s.kernel + kx];
          if (w == 0.0f) continue;
          std::size_t ox0, ox1;
          valid_out_range(ow, s.width, kx, s.stride, s.padding, &ox0, &ox1);
          if (ox0 >= ox1) continue;
          const std::size_t len = ox1 - ox0;
          for (std::size_t oy = oy0; oy < oy1; ++oy) {
            const std::size_t iy = oy * s.stride + ky - s.padding;
            const float* HSDL_RESTRICT ip =
                img + iy * s.width + ox0 * s.stride + kx - s.padding;
            float* HSDL_RESTRICT op = plane + oy * ow + ox0;
            for (std::size_t j = 0; j < len; ++j)
              op[j] += w * ip[j * s.stride];
          }
        }
      }
    }
    bias_relu_epilogue(plane, oh * ow, bias[oc], fuse_relu);
  }
}

#ifdef HSDL_CONV_DIRECT_AVX2
// target("avx2") without "fma": with FMA unavailable to the target the
// compiler cannot contract the mul+add pairs, so every lane rounds
// exactly like the scalar loop above.
__attribute__((target("avx2"))) void conv_body_avx2(
    const float* HSDL_RESTRICT in, const float* HSDL_RESTRICT weight,
    const float* HSDL_RESTRICT bias, const ConvDirectShape& s,
    bool fuse_relu, float* HSDL_RESTRICT out) {
  const std::size_t oh = s.out_height(), ow = s.out_width();
  const std::size_t kk = s.in_channels * s.kernel * s.kernel;
  for (std::size_t oc = 0; oc < s.out_channels; ++oc) {
    float* plane = out + oc * oh * ow;
    for (std::size_t j = 0; j < oh * ow; ++j) plane[j] = 0.0f;
    const float* wrow = weight + oc * kk;
    for (std::size_t c = 0; c < s.in_channels; ++c) {
      const float* img = in + c * s.height * s.width;
      for (std::size_t ky = 0; ky < s.kernel; ++ky) {
        std::size_t oy0, oy1;
        valid_out_range(oh, s.height, ky, s.stride, s.padding, &oy0, &oy1);
        for (std::size_t kx = 0; kx < s.kernel; ++kx) {
          const float w = wrow[(c * s.kernel + ky) * s.kernel + kx];
          if (w == 0.0f) continue;
          std::size_t ox0, ox1;
          valid_out_range(ow, s.width, kx, s.stride, s.padding, &ox0, &ox1);
          if (ox0 >= ox1) continue;
          const std::size_t len = ox1 - ox0;
          for (std::size_t oy = oy0; oy < oy1; ++oy) {
            const std::size_t iy = oy * s.stride + ky - s.padding;
            const float* HSDL_RESTRICT ip =
                img + iy * s.width + ox0 * s.stride + kx - s.padding;
            float* HSDL_RESTRICT op = plane + oy * ow + ox0;
            for (std::size_t j = 0; j < len; ++j)
              op[j] += w * ip[j * s.stride];
          }
        }
      }
    }
    bias_relu_epilogue(plane, oh * ow, bias[oc], fuse_relu);
  }
}
#endif

}  // namespace

void conv2d_direct_scalar(const float* in, const float* weight,
                          const float* bias, const ConvDirectShape& shape,
                          bool fuse_relu, float* out) {
  if (shape.stride == 1) {
    Stride1Scratch& scratch = stride1_scratch();
    const std::size_t pw = fill_padded(in, shape, &scratch.pad);
    scratch.plane.resize(shape.out_height() * pw);
    conv_plane_scalar(scratch.pad.data(), weight, bias, shape, fuse_relu,
                      scratch.plane.data(), out);
    return;
  }
  conv_body_scalar(in, weight, bias, shape, fuse_relu, out);
}

void conv2d_direct(const float* in, const float* weight, const float* bias,
                   const ConvDirectShape& shape, bool fuse_relu, float* out) {
#ifdef HSDL_CONV_DIRECT_AVX2
  if (cpu::has_avx2_fma()) {
    if (shape.stride == 1) {
      Stride1Scratch& scratch = stride1_scratch();
      const std::size_t pw = fill_padded(in, shape, &scratch.pad);
      scratch.plane.resize(shape.out_height() * pw);
      conv_plane_avx2(scratch.pad.data(), weight, bias, shape, fuse_relu,
                      scratch.plane.data(), out);
      return;
    }
    conv_body_avx2(in, weight, bias, shape, fuse_relu, out);
    return;
  }
#endif
  conv2d_direct_scalar(in, weight, bias, shape, fuse_relu, out);
}

}  // namespace hsdl::nn

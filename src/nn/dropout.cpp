#include "nn/dropout.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(&rng) {
  HSDL_CHECK(p >= 0.0 && p < 1.0);
}

std::string Dropout::name() const {
  std::ostringstream os;
  os << "dropout(" << p_ << ")";
  return os.str();
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || p_ == 0.0) {
    // Identity; mark mask as all-ones so a stray backward stays correct.
    mask_ = Tensor(input.shape(), 1.0f);
    return input;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float m = rng_->bernoulli(p_) ? 0.0f : keep_scale;
    mask_[i] = m;
    out[i] = input[i] * m;
  }
  return out;
}

Tensor Dropout::infer(const Tensor& input, WorkspaceArena& ws) const {
  Tensor out = ws.take(input.shape());
  std::copy(input.data(), input.data() + input.numel(), out.data());
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(same_shape(grad_output, mask_), "backward before forward");
  Tensor grad_in(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    grad_in[i] = grad_output[i] * mask_[i];
  return grad_in;
}

}  // namespace hsdl::nn

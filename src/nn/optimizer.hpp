// Gradient-descent optimizers.
//
// The paper trains with (mini-batch) SGD and step learning-rate decay
// (Algorithm 1 lines 10-14). Decay scheduling lives in the trainer; the
// optimizer just applies W <- W - lr * G (optionally with momentum, off by
// default to match the paper).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace hsdl::nn {

class SgdOptimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);
  double momentum() const { return momentum_; }

  /// Applies one update using the gradients accumulated in the params.
  void step(const std::vector<Param*>& params);

  /// Deep-copies the velocity buffers in `params` order, one tensor per
  /// param (zeros for params never stepped); empty when momentum is 0.
  /// Feeds checkpointing: restore_state on a same-shape optimizer
  /// continues the update sequence bit-for-bit.
  std::vector<Tensor> snapshot_state(const std::vector<Param*>& params) const;
  void restore_state(const std::vector<Param*>& params,
                     const std::vector<Tensor>& state);

 private:
  double lr_;
  double momentum_;
  // Velocity buffers keyed by parameter pointer order of first use.
  std::vector<std::pair<const Param*, Tensor>> velocity_;
};

/// Adam (Kingma & Ba) — not used by the paper (kept faithful to plain
/// MGD there) but provided as the modern alternative; the ablation bench
/// contrasts the two.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);
  /// Number of steps applied (the `t` in the bias correction).
  std::uint64_t step_count() const { return t_; }

  void step(const std::vector<Param*>& params);

  /// Deep-copies the moment buffers in `params` order, interleaved
  /// [m0, v0, m1, v1, ...] (zeros for params never stepped). Together
  /// with step_count() this is the full Adam state; restore_state
  /// continues the update sequence bit-for-bit.
  std::vector<Tensor> snapshot_state(const std::vector<Param*>& params) const;
  void restore_state(const std::vector<Param*>& params,
                     const std::vector<Tensor>& state, std::uint64_t t);

 private:
  struct State {
    const Param* key;
    Tensor m;  // first moment
    Tensor v;  // second moment
  };
  State& state_for(const Param* p);

  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<State> states_;
};

}  // namespace hsdl::nn

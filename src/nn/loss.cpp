#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {
namespace {

// Shared row kernel so the heap and arena entry points cannot drift
// numerically.
void softmax_rows(const Tensor& logits, Tensor& out) {
  const std::size_t n = logits.extent(0), c = logits.extent(1);
  for (std::size_t i = 0; i < n; ++i)
    softmax_row(logits.data() + i * c, c, out.data() + i * c);
}

}  // namespace

void softmax_row(const float* logits, std::size_t c, float* out) {
  float m = logits[0];
  for (std::size_t j = 1; j < c; ++j) m = std::max(m, logits[j]);
  double denom = 0.0;
  for (std::size_t j = 0; j < c; ++j)
    denom += std::exp(static_cast<double>(logits[j] - m));
  // Each element reads logits[j] before writing out[j], so out == logits
  // (in-place, used by the fused FC+softmax path) is well defined.
  for (std::size_t j = 0; j < c; ++j)
    out[j] = static_cast<float>(std::exp(static_cast<double>(logits[j] - m)) /
                                denom);
}

Tensor softmax(const Tensor& logits) {
  HSDL_CHECK(logits.dim() == 2);
  Tensor out(logits.shape());
  softmax_rows(logits, out);
  return out;
}

Tensor softmax(const Tensor& logits, WorkspaceArena& ws) {
  HSDL_CHECK(logits.dim() == 2);
  Tensor out = ws.take(logits.shape());
  softmax_rows(logits, out);
  return out;
}

double SoftmaxCrossEntropy::forward(const Tensor& logits,
                                    const Tensor& targets) {
  HSDL_CHECK(logits.dim() == 2);
  HSDL_CHECK_MSG(same_shape(logits, targets),
                 "logits " << logits.shape_str() << " vs targets "
                           << targets.shape_str());
  probs_ = softmax(logits);
  targets_ = targets;
  const std::size_t n = logits.extent(0), c = logits.extent(1);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const double t = targets.at(i, j);
      if (t == 0.0) continue;  // paper Eq. (8): lim x->0 of x log x = 0
      const double p =
          std::max(static_cast<double>(probs_.at(i, j)), 1e-12);
      loss -= t * std::log(p);
    }
  }
  return loss / static_cast<double>(n);
}

Tensor SoftmaxCrossEntropy::backward() const {
  HSDL_CHECK_MSG(!probs_.empty(), "backward before forward");
  const std::size_t n = probs_.extent(0);
  Tensor grad(probs_.shape());
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < probs_.numel(); ++i)
    grad[i] = (probs_[i] - targets_[i]) * inv_n;
  return grad;
}

}  // namespace hsdl::nn

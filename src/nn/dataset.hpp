// In-memory classification dataset and mini-batch assembly.
//
// Samples share one fixed feature shape (e.g. [k, n, n] feature tensors).
// Mini-batch gradient descent (paper Algorithm 1 line 5) draws uniformly
// random batches; evaluation walks the set sequentially.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace hsdl::nn {

class ClassificationDataset {
 public:
  /// `feature_shape` excludes the batch axis, e.g. {32, 12, 12}.
  explicit ClassificationDataset(std::vector<std::size_t> feature_shape,
                                 std::size_t num_classes = 2);

  const std::vector<std::size_t>& feature_shape() const {
    return feature_shape_;
  }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t feature_numel() const { return feature_numel_; }
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Appends a sample; `features` must have feature_numel() elements and
  /// `label` must be < num_classes.
  void add(std::vector<float> features, std::size_t label);

  std::size_t label(std::size_t i) const { return labels_[i]; }
  const float* features(std::size_t i) const;

  /// Number of samples with the given label.
  std::size_t count_label(std::size_t label) const;

  /// Assembles a batch tensor [idx.size(), feature_shape...].
  Tensor gather(const std::vector<std::size_t>& idx) const;

  /// Contiguous-range overload: samples [begin, end) as one memcpy, no
  /// per-batch index vector (the sequential-evaluation hot path).
  Tensor gather(std::size_t begin, std::size_t end) const;

  /// One-hot targets [idx.size(), num_classes].
  Tensor gather_onehot(const std::vector<std::size_t>& idx) const;

  /// Uniformly random batch indices (with replacement — the paper samples
  /// each batch independently from the training set).
  std::vector<std::size_t> sample_batch(std::size_t batch, Rng& rng) const;

  /// Class-balanced batch: indices drawn uniformly per class, classes
  /// interleaved. Requires every class to be non-empty.
  std::vector<std::size_t> sample_batch_balanced(std::size_t batch,
                                                 Rng& rng) const;

 private:
  std::vector<std::size_t> feature_shape_;
  std::size_t num_classes_;
  std::size_t feature_numel_;
  std::vector<float> storage_;       // samples back to back
  std::vector<std::size_t> labels_;
};

}  // namespace hsdl::nn

// Softmax cross-entropy with arbitrary target distributions.
//
// The paper's biased learning (Section 4.3) trains the non-hotspot class
// toward the soft target [1-eps, eps] instead of the one-hot [1, 0], so the
// loss must accept full target distributions, not class indices.
// forward() computes Equations (6)-(7); backward() returns the well-known
// (softmax - target) / N gradient.
#pragma once

#include "nn/tensor.hpp"

namespace hsdl::nn {

class SoftmaxCrossEntropy {
 public:
  /// logits: [N, C]; targets: [N, C] rows summing to 1. Returns mean loss.
  double forward(const Tensor& logits, const Tensor& targets);

  /// dLoss/dLogits for the last forward() call.
  Tensor backward() const;

  /// Softmax probabilities of the last forward() call ([N, C]).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  Tensor targets_;
};

class WorkspaceArena;

/// One row of the stabilized softmax: out[j] = exp(x[j]-max)/sum. This is
/// the single arithmetic definition every softmax in the repo routes
/// through (loss, standalone, and the fused FC+softmax serving path), so
/// they cannot drift numerically. Safe to call in place (out == logits).
void softmax_row(const float* logits, std::size_t c, float* out);

/// Standalone row-wise softmax (numerically stabilized).
Tensor softmax(const Tensor& logits);

/// Arena-backed softmax: bitwise identical to softmax(logits) but the
/// output is drawn from `ws` instead of the heap.
Tensor softmax(const Tensor& logits, WorkspaceArena& ws);

}  // namespace hsdl::nn

// Post-training int8 quantized inference.
//
// Scheme (DESIGN.md §12):
//   * Weights: per-output-channel symmetric int8, sw[oc] = max|W[oc]|/127.
//   * Activations: per-tensor affine uint8 restricted to [0, 127],
//     q = clamp(round(x * 1/s) + zp, 0, 127) with round-to-nearest-even
//     (the x86 default, so the scalar std::lrintf path and the AVX2
//     _mm256_cvtps_epi32 path round identically). The range always
//     includes 0 so zero padding is exactly representable (pad value ==
//     zp). Post-ReLU tensors calibrate to zp = 0.
//   * Accumulation is int32 and therefore EXACT: products are at most
//     127*127 = 16129 and the network's largest reduction (the first FC,
//     288 terms) stays far below 2^31. Exact integer accumulation is
//     order-independent, so the AVX2 and scalar kernels are bitwise
//     identical by construction — no FMA/rounding caveats like fp32.
//   * Dequant epilogue per output: v = s_in*sw[oc]*(acc - zp_in*wsum[oc])
//     + bias[oc], optional fused ReLU, then requantize to the next op's
//     activation params. The final Linear keeps fp32 logits and applies
//     the shared softmax_row kernel.
//   * Saturation policy: activations outside the calibrated range at
//     serving time clamp (saturate) to [0, 127]; calibration must cover a
//     representative split (the detector calibrates on validation data).
//
// Scales are calibrated by replaying a calibration batch through the fp32
// network layer-by-layer and recording each tensor's min/max.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace hsdl::nn {

class Sequential;
class WorkspaceArena;

/// Per-tensor activation quantization parameters (uint8 in [0, 127]).
/// Quantization multiplies by the precomputed reciprocal `inv_scale`
/// rather than dividing, so keep the two fields consistent — construct
/// through calibrate_act().
struct ActQuant {
  float scale = 1.0f;
  float inv_scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Quantize one value with the given params (saturating).
std::uint8_t quantize_value(float x, const ActQuant& q);
/// Exact inverse map of the quantized grid point.
float dequantize_value(std::uint8_t v, const ActQuant& q);
/// Min/max-based calibration: picks the tightest [scale, zero_point]
/// covering [min(lo,0), max(hi,0)] on the 128-point grid.
ActQuant calibrate_act(float lo, float hi);

/// An int8 copy of a trained Sequential for serving. Supports the stack
/// HotspotCnn builds (Conv2d/Relu/MaxPool2d/Flatten/Dropout/Linear with a
/// Linear last); the constructor rejects anything else.
class QuantizedNet {
 public:
  /// `calibration` is a [N, ...] batch shaped like the net input; it is
  /// replayed through the fp32 net to calibrate activation scales.
  QuantizedNet(const Sequential& net, const Tensor& calibration);

  /// Softmax probabilities [N, classes] for a batch shaped like the
  /// calibration input. Thread-safe; parallel over samples.
  Tensor probabilities(const Tensor& input) const;
  /// Same, with the output drawn from `ws` (internals use thread-local
  /// scratch either way).
  Tensor probabilities(const Tensor& input, WorkspaceArena& ws) const;

  std::size_t num_quantized_layers() const;  ///< conv + linear count
  const std::vector<std::size_t>& input_shape() const { return in_shape_; }

 private:
  enum class OpKind { kConv, kPool, kLinear };

  struct Op {
    OpKind kind = OpKind::kConv;
    // conv/linear
    std::vector<std::int8_t> qweight;   // conv: [oc][ic*k*k]; fc: [out][in]
    std::vector<std::int32_t> wsum;     // per-oc sum of qweight
    std::vector<float> combined_scale;  // per-oc s_in * sw[oc]
    std::vector<float> bias;
    ActQuant in_q;
    ActQuant out_q;       // requant target (unused for the final linear)
    bool fuse_relu = false;
    bool fp32_out = false;  // final linear: keep fp32 logits
    // conv geometry
    std::size_t in_channels = 0, height = 0, width = 0;
    std::size_t out_channels = 0, kernel = 0, stride = 1, padding = 0;
    // pool geometry (in_channels/height/width reused)
    std::size_t window = 0;
    // linear geometry
    std::size_t in_features = 0, out_features = 0;
    // Stride-1 conv fast-path precompute (fixed once weights and geometry
    // are known; rebuilding these per window showed up in serving
    // profiles): per-tap offsets into the padded image, and the per-pair
    // packed (w0, w1) i16 words the pmaddwd kernel broadcasts.
    std::vector<std::size_t> tap_off;   // [ic*k*k]
    std::vector<std::int32_t> wpair;    // [oc][(ic*k*k + 1) / 2]
  };

  void run_sample(const float* in, float* probs_out) const;

  std::vector<Op> ops_;
  ActQuant input_q_;
  std::vector<std::size_t> in_shape_;  // per-sample, e.g. {C, H, W}
  std::size_t in_numel_ = 0;
  std::size_t classes_ = 0;
  std::size_t max_act_ = 0;  // largest activation buffer (u8 elements)
  std::size_t max_pad_ = 0;  // largest padded conv input buffer
};

}  // namespace hsdl::nn

#include "nn/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hsdl::nn {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  HSDL_CHECK(learning_rate > 0.0);
  HSDL_CHECK(momentum >= 0.0 && momentum < 1.0);
}

void SgdOptimizer::set_learning_rate(double lr) {
  HSDL_CHECK(lr > 0.0);
  lr_ = lr;
}

void SgdOptimizer::step(const std::vector<Param*>& params) {
  const auto flr = static_cast<float>(lr_);
  if (momentum_ == 0.0) {
    for (Param* p : params) p->value.axpy(-flr, p->grad);
    return;
  }
  const auto fm = static_cast<float>(momentum_);
  for (Param* p : params) {
    Tensor* v = nullptr;
    for (auto& [key, vel] : velocity_)
      if (key == p) {
        v = &vel;
        break;
      }
    if (v == nullptr) {
      velocity_.emplace_back(p, Tensor(p->value.shape()));
      v = &velocity_.back().second;
    }
    // v <- m*v + g; w <- w - lr*v
    v->scale(fm);
    v->add(p->grad);
    p->value.axpy(-flr, *v);
  }
}

std::vector<Tensor> SgdOptimizer::snapshot_state(
    const std::vector<Param*>& params) const {
  std::vector<Tensor> out;
  if (momentum_ == 0.0) return out;  // stateless update rule
  out.reserve(params.size());
  for (const Param* p : params) {
    const Tensor* v = nullptr;
    for (const auto& [key, vel] : velocity_)
      if (key == p) {
        v = &vel;
        break;
      }
    out.push_back(v != nullptr ? *v : Tensor(p->value.shape()));
  }
  return out;
}

void SgdOptimizer::restore_state(const std::vector<Param*>& params,
                                 const std::vector<Tensor>& state) {
  velocity_.clear();
  if (momentum_ == 0.0) {
    HSDL_CHECK_MSG(state.empty(),
                   "momentum-free SGD cannot restore velocity state");
    return;
  }
  HSDL_CHECK_MSG(state.size() == params.size(),
                 "SGD state has " << state.size() << " tensors, model has "
                                  << params.size() << " params");
  for (std::size_t i = 0; i < params.size(); ++i) {
    HSDL_CHECK_MSG(same_shape(state[i], params[i]->value),
                   "SGD velocity shape mismatch for param '"
                       << params[i]->name << "'");
    velocity_.emplace_back(params[i], state[i]);
  }
}

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1,
                             double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
  HSDL_CHECK(learning_rate > 0.0);
  HSDL_CHECK(beta1 >= 0.0 && beta1 < 1.0);
  HSDL_CHECK(beta2 >= 0.0 && beta2 < 1.0);
  HSDL_CHECK(epsilon > 0.0);
}

void AdamOptimizer::set_learning_rate(double lr) {
  HSDL_CHECK(lr > 0.0);
  lr_ = lr;
}

AdamOptimizer::State& AdamOptimizer::state_for(const Param* p) {
  for (State& s : states_)
    if (s.key == p) return s;
  states_.push_back({p, Tensor(p->value.shape()), Tensor(p->value.shape())});
  return states_.back();
}

std::vector<Tensor> AdamOptimizer::snapshot_state(
    const std::vector<Param*>& params) const {
  std::vector<Tensor> out;
  out.reserve(2 * params.size());
  for (const Param* p : params) {
    const State* s = nullptr;
    for (const State& candidate : states_)
      if (candidate.key == p) {
        s = &candidate;
        break;
      }
    if (s != nullptr) {
      out.push_back(s->m);
      out.push_back(s->v);
    } else {
      out.push_back(Tensor(p->value.shape()));
      out.push_back(Tensor(p->value.shape()));
    }
  }
  return out;
}

void AdamOptimizer::restore_state(const std::vector<Param*>& params,
                                  const std::vector<Tensor>& state,
                                  std::uint64_t t) {
  HSDL_CHECK_MSG(state.size() == 2 * params.size(),
                 "Adam state has " << state.size() << " tensors, model needs "
                                   << 2 * params.size());
  states_.clear();
  for (std::size_t i = 0; i < params.size(); ++i) {
    HSDL_CHECK_MSG(same_shape(state[2 * i], params[i]->value) &&
                       same_shape(state[2 * i + 1], params[i]->value),
                   "Adam moment shape mismatch for param '"
                       << params[i]->name << "'");
    states_.push_back({params[i], state[2 * i], state[2 * i + 1]});
  }
  t_ = static_cast<std::size_t>(t);
}

void AdamOptimizer::step(const std::vector<Param*>& params) {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    State& s = state_for(p);
    HSDL_CHECK(same_shape(s.m, p->value));
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const double g = p->grad[i];
      const double m = beta1_ * s.m[i] + (1.0 - beta1_) * g;
      const double v = beta2_ * s.v[i] + (1.0 - beta2_) * g * g;
      s.m[i] = static_cast<float>(m);
      s.v[i] = static_cast<float>(v);
      const double m_hat = m / bias1;
      const double v_hat = v / bias2;
      p->value[i] -=
          static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

}  // namespace hsdl::nn

#include "nn/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hsdl::nn {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  HSDL_CHECK(learning_rate > 0.0);
  HSDL_CHECK(momentum >= 0.0 && momentum < 1.0);
}

void SgdOptimizer::set_learning_rate(double lr) {
  HSDL_CHECK(lr > 0.0);
  lr_ = lr;
}

void SgdOptimizer::step(const std::vector<Param*>& params) {
  const auto flr = static_cast<float>(lr_);
  if (momentum_ == 0.0) {
    for (Param* p : params) p->value.axpy(-flr, p->grad);
    return;
  }
  const auto fm = static_cast<float>(momentum_);
  for (Param* p : params) {
    Tensor* v = nullptr;
    for (auto& [key, vel] : velocity_)
      if (key == p) {
        v = &vel;
        break;
      }
    if (v == nullptr) {
      velocity_.emplace_back(p, Tensor(p->value.shape()));
      v = &velocity_.back().second;
    }
    // v <- m*v + g; w <- w - lr*v
    v->scale(fm);
    v->add(p->grad);
    p->value.axpy(-flr, *v);
  }
}

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1,
                             double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
  HSDL_CHECK(learning_rate > 0.0);
  HSDL_CHECK(beta1 >= 0.0 && beta1 < 1.0);
  HSDL_CHECK(beta2 >= 0.0 && beta2 < 1.0);
  HSDL_CHECK(epsilon > 0.0);
}

void AdamOptimizer::set_learning_rate(double lr) {
  HSDL_CHECK(lr > 0.0);
  lr_ = lr;
}

AdamOptimizer::State& AdamOptimizer::state_for(const Param* p) {
  for (State& s : states_)
    if (s.key == p) return s;
  states_.push_back({p, Tensor(p->value.shape()), Tensor(p->value.shape())});
  return states_.back();
}

void AdamOptimizer::step(const std::vector<Param*>& params) {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    State& s = state_for(p);
    HSDL_CHECK(same_shape(s.m, p->value));
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const double g = p->grad[i];
      const double m = beta1_ * s.m[i] + (1.0 - beta1_) * g;
      const double v = beta2_ * s.v[i] + (1.0 - beta2_) * g * g;
      s.m[i] = static_cast<float>(m);
      s.v[i] = static_cast<float>(v);
      const double m_hat = m / bias1;
      const double v_hat = v / bias2;
      p->value[i] -=
          static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

}  // namespace hsdl::nn

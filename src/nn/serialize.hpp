// Model parameter serialization.
//
// Binary format ("HSDLNN1\n" magic): parameter count, then per parameter a
// name, shape, and raw float payload. Loading verifies that names and
// shapes match the target network, so a checkpoint can only be restored
// into the architecture that produced it.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace hsdl::nn {

void save_params(std::ostream& os, const std::vector<Param*>& params);
void save_params_file(const std::string& path,
                      const std::vector<Param*>& params);

/// Restores values in place. Throws CheckError on magic/name/shape
/// mismatch or truncated payloads.
void load_params(std::istream& is, const std::vector<Param*>& params);
void load_params_file(const std::string& path,
                      const std::vector<Param*>& params);

/// Deep-copies parameter values (for best-on-validation snapshots).
std::vector<Tensor> snapshot_params(const std::vector<Param*>& params);
void restore_params(const std::vector<Tensor>& snapshot,
                    const std::vector<Param*>& params);

}  // namespace hsdl::nn

// Model parameter serialization.
//
// The current checkpoint container is v2 ("HSDLNN2\0" magic): a
// {magic, version, flags} header, then per parameter a name, shape,
// byte-counted little-endian float payload and a CRC-32 of the record,
// and finally a CRC-32 of the whole file. Loading verifies both
// checksum levels, that names and shapes match the target network, and
// that the stream ends exactly at the end of the format, so a
// truncated, bit-flipped or concatenated file is rejected with a
// positioned diagnostic instead of silently restoring garbage.
//
// Legacy v1 files ("HSDLNN1\n" magic, native-endian, no checksums) are
// still read for backward compatibility; writes always emit v2.
// File saves are atomic (write temp + rename), so an interrupted save
// leaves the previous checkpoint intact.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "nn/layer.hpp"

namespace hsdl::nn {

/// Checkpoint container version written by save_params.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Encodes the v2 checkpoint into an in-memory buffer.
std::string serialize_params(const std::vector<Param*>& params);

/// Decodes a v1 or v2 checkpoint buffer into the params, in place.
/// Throws hsdl::io::IoError (a CheckError) carrying the byte offset on
/// any structural damage, checksum mismatch, or trailing data; throws
/// CheckError on name/shape mismatch with the target network.
void deserialize_params(std::string_view data,
                        const std::vector<Param*>& params,
                        const std::string& context = "checkpoint");

void save_params(std::ostream& os, const std::vector<Param*>& params);
/// Atomic: writes "<path>.tmp" then renames over `path`.
void save_params_file(const std::string& path,
                      const std::vector<Param*>& params);

/// Restores values in place; consumes the rest of the stream and
/// rejects trailing data (see deserialize_params for the error model).
void load_params(std::istream& is, const std::vector<Param*>& params);
void load_params_file(const std::string& path,
                      const std::vector<Param*>& params);

/// Deep-copies parameter values (for best-on-validation snapshots).
std::vector<Tensor> snapshot_params(const std::vector<Param*>& params);
void restore_params(const std::vector<Tensor>& snapshot,
                    const std::vector<Param*>& params);

}  // namespace hsdl::nn

#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t e : shape) n *= e;
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {
  for (std::size_t e : shape_) HSDL_CHECK_MSG(e > 0, "zero-extent axis");
}

Tensor::Tensor(std::initializer_list<std::size_t> shape, float fill)
    : Tensor(std::vector<std::size_t>(shape), fill) {}

Tensor Tensor::from_data(std::vector<std::size_t> shape,
                         std::vector<float> data) {
  Tensor t;
  HSDL_CHECK_MSG(shape_numel(shape) == data.size(),
                 "data size " << data.size() << " does not match shape");
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

std::size_t Tensor::extent(std::size_t axis) const {
  HSDL_CHECK(axis < shape_.size());
  return shape_[axis];
}

std::size_t Tensor::offset2(std::size_t i, std::size_t j) const {
  HSDL_DCHECK(dim() == 2 && i < shape_[0] && j < shape_[1]);
  return i * shape_[1] + j;
}

std::size_t Tensor::offset3(std::size_t i, std::size_t j,
                            std::size_t k) const {
  HSDL_DCHECK(dim() == 3 && i < shape_[0] && j < shape_[1] && k < shape_[2]);
  return (i * shape_[1] + j) * shape_[2] + k;
}

std::size_t Tensor::offset4(std::size_t i, std::size_t j, std::size_t k,
                            std::size_t l) const {
  HSDL_DCHECK(dim() == 4 && i < shape_[0] && j < shape_[1] && k < shape_[2] &&
              l < shape_[3]);
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::at(std::size_t i, std::size_t j) { return data_[offset2(i, j)]; }
float Tensor::at(std::size_t i, std::size_t j) const {
  return data_[offset2(i, j)];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
  return data_[offset3(i, j, k)];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  return data_[offset3(i, j, k)];
}
float& Tensor::at(std::size_t i, std::size_t j, std::size_t k,
                  std::size_t l) {
  return data_[offset4(i, j, k, l)];
}
float Tensor::at(std::size_t i, std::size_t j, std::size_t k,
                 std::size_t l) const {
  return data_[offset4(i, j, k, l)];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  HSDL_CHECK_MSG(shape_numel(new_shape) == numel(),
                 "reshape to incompatible element count");
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add(const Tensor& other) { axpy(1.0f, other); }

void Tensor::axpy(float alpha, const Tensor& other) {
  HSDL_CHECK(same_shape(*this, other));
  const float* src = other.data();
  float* dst = data();
  for (std::size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
}

void Tensor::scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float Tensor::min() const {
  HSDL_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  HSDL_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  return os.str();
}

}  // namespace hsdl::nn

#include "nn/activations.hpp"

#include <cmath>

#include "common/check.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {

Tensor Relu::forward(const Tensor& input, bool /*train*/) {
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool pos = input[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    out[i] = pos ? input[i] : 0.0f;
  }
  return out;
}

Tensor Relu::infer(const Tensor& input) const {
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i)
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  return out;
}

Tensor Relu::infer(const Tensor& input, WorkspaceArena& ws) const {
  Tensor out = ws.take(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i)
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(same_shape(grad_output, mask_), "backward before forward");
  Tensor grad_in(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    grad_in[i] = grad_output[i] * mask_[i];
  return grad_in;
}

Tensor Sigmoid::forward(const Tensor& input, bool /*train*/) {
  output_ = Tensor(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i)
    output_[i] =
        static_cast<float>(1.0 / (1.0 + std::exp(-static_cast<double>(
                                            input[i]))));
  return output_;
}

Tensor Sigmoid::infer(const Tensor& input) const {
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i)
    out[i] =
        static_cast<float>(1.0 / (1.0 + std::exp(-static_cast<double>(
                                            input[i]))));
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(same_shape(grad_output, output_), "backward before forward");
  Tensor grad_in(grad_output.shape());
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    grad_in[i] = grad_output[i] * output_[i] * (1.0f - output_[i]);
  return grad_in;
}

}  // namespace hsdl::nn

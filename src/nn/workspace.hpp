// Pooled inference workspaces.
//
// A WorkspaceArena recycles tensor storage and scratch buffers across
// forward passes so steady-state inference performs no heap allocations:
// the first batch through a network grows the pool to the high-water
// mark, and every subsequent batch of the same (or smaller) shape is
// served entirely from recycled buffers. The arena-aware
// Layer::infer(input, ws) overloads draw their outputs and im2col/col
// scratch from the arena instead of constructing fresh Tensors.
//
// Contracts:
//   * take() returns a tensor with UNSPECIFIED contents — callers must
//     fully overwrite it (every arena-aware kernel in this library does).
//     This is what makes reuse free: no clearing on the hot path.
//   * scratch() spans are valid until the enclosing ScratchScope (or the
//     arena) releases them; nested scopes restore the cursor on exit, so
//     composed kernels (conv inside sequential) reuse the same slabs.
//   * An arena is single-owner: one thread calls take/recycle/scratch.
//     Kernels may still parallel_for over disjoint slices of an
//     arena-backed buffer — the arena itself is not touched from workers.
//   * Numerics are untouched: arena-backed kernels run the exact same
//     arithmetic in the exact same order as their allocating twins, so
//     results stay bitwise identical (the determinism suite proves it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace hsdl::nn {

class WorkspaceArena {
 public:
  WorkspaceArena() = default;
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// Tensor of `shape` with unspecified contents, backed by recycled
  /// storage when a pooled buffer is large enough (smallest adequate
  /// buffer wins; ties keep pool order stable, so the buffer-to-role
  /// assignment is deterministic across identical batches).
  Tensor take(std::vector<std::size_t> shape);

  /// Returns a tensor's storage to the pool for future take() calls.
  void recycle(Tensor t);

  /// Scratch span of `n` floats, unspecified contents, valid until the
  /// cursor is rewound past it (ScratchScope / release_scratch).
  std::span<float> scratch(std::size_t n);

  /// Rewinds the scratch cursor to zero; buffers are retained.
  void release_scratch() { scratch_used_ = 0; }

  struct Stats {
    std::uint64_t takes = 0;        ///< take() calls
    std::uint64_t allocations = 0;  ///< takes/scratches that had to allocate
    std::uint64_t reuses = 0;       ///< takes served from the pool
    std::size_t bytes_reserved = 0; ///< pool + scratch high-water footprint
  };
  Stats stats() const;

  /// Current scratch cursor (for ScratchScope).
  std::size_t scratch_mark() const { return scratch_used_; }
  void rewind_scratch(std::size_t mark) { scratch_used_ = mark; }

 private:
  std::vector<std::vector<float>> pool_;     // recycled tensor storage
  std::vector<std::vector<float>> scratch_;  // slabs, indexed by cursor
  std::size_t scratch_used_ = 0;
  std::uint64_t takes_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
};

/// RAII scratch cursor guard: kernels wrap their scratch() calls in a
/// scope so slabs are reusable by the next kernel the moment the scope
/// exits, while outer scopes' slabs stay live.
class ScratchScope {
 public:
  explicit ScratchScope(WorkspaceArena& ws)
      : ws_(ws), mark_(ws.scratch_mark()) {}
  ~ScratchScope() { ws_.rewind_scratch(mark_); }
  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  WorkspaceArena& ws_;
  std::size_t mark_;
};

}  // namespace hsdl::nn

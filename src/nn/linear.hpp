// Fully connected (dense) layer.
#pragma once

#include "nn/layer.hpp"

namespace hsdl::nn {

/// y = x W^T + b with x: [N, in], W: [out, in], b: [out].
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  std::string name() const override;
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override;
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param weight_;
  Param bias_;
  Tensor input_;
};

}  // namespace hsdl::nn

// Fully connected (dense) layer.
#pragma once

#include "nn/layer.hpp"

namespace hsdl::nn {

/// y = x W^T + b with x: [N, in], W: [out, in], b: [out].
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  std::string name() const override;
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override;
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  /// Fused y = relu(x W^T + b): same GEMM as infer(), with the bias add
  /// and ReLU predicate applied in one pass over the output instead of
  /// materializing the pre-activation. Bitwise identical to
  /// infer() followed by Relu::infer().
  Tensor infer_relu(const Tensor& input) const;
  Tensor infer_relu(const Tensor& input, WorkspaceArena& ws) const;

  /// Fused y = softmax(x W^T + b) per row, via the shared softmax_row
  /// kernel. Bitwise identical to infer() followed by softmax().
  Tensor infer_softmax(const Tensor& input) const;
  Tensor infer_softmax(const Tensor& input, WorkspaceArena& ws) const;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const Param& weight() const { return weight_; }
  const Param& bias() const { return bias_; }

 private:
  enum class Epilogue { kNone, kRelu, kSoftmax };
  void matmul_epilogue(const Tensor& input, Epilogue epi, Tensor& out) const;

  std::size_t in_;
  std::size_t out_;
  Param weight_;
  Param bias_;
  Tensor input_;
};

}  // namespace hsdl::nn

// Sequential container: a feed-forward stack of layers.
#pragma once

#include <memory>
#include <utility>

#include "nn/layer.hpp"

namespace hsdl::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for further wiring.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  std::string name() const override { return "sequential"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override;
  /// Arena-backed inference: intermediates are recycled back into `ws` as
  /// each layer consumes them, so a warm arena serves the whole chain with
  /// zero heap allocations. The caller owns `input`; the returned tensor
  /// is arena-pooled (recycle it when done).
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;
  /// Runs only layers [0, n_layers) with the fused serving walk. The
  /// fused FC+softmax path (HotspotCnn) uses this to stop just before
  /// the final Linear and apply Linear::infer_softmax itself.
  Tensor infer_prefix(const Tensor& input, std::size_t n_layers,
                      WorkspaceArena& ws) const;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Per-layer "name : output shape" summary for a given input shape.
  std::vector<std::pair<std::string, std::vector<std::size_t>>> summary(
      const std::vector<std::size_t>& input_shape) const;

  /// Total learnable parameter count.
  std::size_t param_count();

 private:
  Tensor fused_infer(const Tensor& input, std::size_t n_layers,
                     WorkspaceArena* ws) const;

  std::vector<LayerPtr> layers_;
};

}  // namespace hsdl::nn

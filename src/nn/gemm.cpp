#include "nn/gemm.hpp"

#include <vector>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

/// Core row-major kernel: C[m x n] += alpha * A[m x k] * B[k x n].
/// A and B are contiguous row-major with the given leading dimensions.
void kernel_nn(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  // Scale C by beta first.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    kernel_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Transposed operands: materialize the transpose once. The matrices in
  // this library are small (<= a few hundred per side), so the copy is
  // cheap and keeps the hot kernel simple and branch-free.
  std::vector<float> abuf, bbuf;
  const float* ap = a;
  std::size_t alda = lda;
  if (trans_a) {
    abuf.resize(m * k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) abuf[i * k + p] = a[p * lda + i];
    ap = abuf.data();
    alda = k;
  }
  const float* bp = b;
  std::size_t bldb = ldb;
  if (trans_b) {
    bbuf.resize(k * n);
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j) bbuf[p * n + j] = b[j * ldb + p];
    bp = bbuf.data();
    bldb = n;
  }
  kernel_nn(m, n, k, alpha, ap, alda, bp, bldb, c, ldc);
}

void matmul(std::size_t m, std::size_t n, std::size_t k, const float* a,
            const float* b, float* c) {
  gemm(false, false, m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
}

}  // namespace hsdl::nn

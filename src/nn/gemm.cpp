#include "nn/gemm.hpp"

#include <algorithm>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "common/check.hpp"
#include "common/cpuinfo.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

#define HSDL_RESTRICT __restrict__

namespace hsdl::nn {
namespace {

// Blocking parameters (floats): KC x NR B-panel stripes stay in L1 across
// a row sweep, MC x KC packed A stays in L2, KC x NC packed B in L3. The
// register microkernel is MR x NR = 6 x 16 — 12 accumulator vectors of 8
// floats under AVX2, the classic BLIS shape.
constexpr std::size_t MR = 6;
constexpr std::size_t NR = 16;
constexpr std::size_t MC = 96;
constexpr std::size_t KC = 256;
constexpr std::size_t NC = 1024;

// Below this flop count the packing overhead dominates; use the plain
// kernel. The cutoff depends only on the problem shape, never on the
// thread count, so the chosen path is stable for a given call.
constexpr std::size_t kNaiveFlopCutoff = 48 * 48 * 48;

/// Core row-major reference kernel: C[m x n] += alpha * A * B.
void kernel_nn(std::size_t m, std::size_t n, std::size_t k, float alpha,
               const float* a, std::size_t lda, const float* b,
               std::size_t ldb, float* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void scale_c(std::size_t m, std::size_t n, float beta, float* c,
             std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

/// Element access of op(A) (logical m x k) and op(B) (logical k x n).
inline float a_at(const float* a, std::size_t lda, bool trans,
                  std::size_t i, std::size_t p) {
  return trans ? a[p * lda + i] : a[i * lda + p];
}
inline float b_at(const float* b, std::size_t ldb, bool trans,
                  std::size_t p, std::size_t j) {
  return trans ? b[j * ldb + p] : b[p * ldb + j];
}

/// Packs an mc x kc panel of alpha*op(A) into MR-row micro-panels:
/// ap[(ir/MR) * kc * MR + p * MR + r], zero-padded to a multiple of MR.
void pack_a(const float* a, std::size_t lda, bool trans, float alpha,
            std::size_t i0, std::size_t mc, std::size_t p0, std::size_t kc,
            float* HSDL_RESTRICT ap) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t rows = std::min(MR, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      std::size_t r = 0;
      for (; r < rows; ++r)
        ap[p * MR + r] = alpha * a_at(a, lda, trans, i0 + ir + r, p0 + p);
      for (; r < MR; ++r) ap[p * MR + r] = 0.0f;
    }
    ap += kc * MR;
  }
}

/// Packs a kc x nc panel of op(B) into NR-column micro-panels:
/// bp[(jr/NR) * kc * NR + p * NR + c], zero-padded to a multiple of NR.
void pack_b(const float* b, std::size_t ldb, bool trans, std::size_t p0,
            std::size_t kc, std::size_t j0, std::size_t nc,
            float* HSDL_RESTRICT bp) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t cols = std::min(NR, nc - jr);
    if (!trans && cols == NR) {
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + j0 + jr;
        float* dst = bp + p * NR;
        for (std::size_t c = 0; c < NR; ++c) dst[c] = src[c];
      }
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        std::size_t c = 0;
        for (; c < cols; ++c)
          bp[p * NR + c] = b_at(b, ldb, trans, p0 + p, j0 + jr + c);
        for (; c < NR; ++c) bp[p * NR + c] = 0.0f;
      }
    }
    bp += kc * NR;
  }
}

/// MR x NR register microkernel: accumulates a kc-long rank update of the
/// packed micro-panels into C (only the valid rows x cols region).
inline __attribute__((always_inline)) void micro_kernel_body(
    std::size_t kc, const float* HSDL_RESTRICT ap,
    const float* HSDL_RESTRICT bp, float* HSDL_RESTRICT c, std::size_t ldc,
    std::size_t rows, std::size_t cols) {
  float acc[MR][NR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const float ar = a[r];
      for (std::size_t col = 0; col < NR; ++col)
        acc[r][col] += ar * b[col];
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t col = 0; col < cols; ++col) crow[col] += acc[r][col];
  }
}

using MicroKernelFn = void (*)(std::size_t, const float*, const float*,
                               float*, std::size_t, std::size_t,
                               std::size_t);

void micro_kernel_generic(std::size_t kc, const float* HSDL_RESTRICT ap,
                          const float* HSDL_RESTRICT bp,
                          float* HSDL_RESTRICT c, std::size_t ldc,
                          std::size_t rows, std::size_t cols) {
  micro_kernel_body(kc, ap, bp, c, ldc, rows, cols);
}

// The 6 x 16 accumulator block needs 12 vector registers of 8 floats —
// only available with AVX2. The build targets baseline x86-64, so the
// hot microkernel gets a hand-written AVX2+FMA variant (per-function
// target attribute) selected at runtime; the generic autovectorized
// version spills the accumulators to the stack on every k iteration and
// loses to the naive kernel. The choice depends only on the host CPU,
// never on thread count or shape, so determinism across thread counts
// is unaffected (the FMA variant rounds differently than the generic
// mul+add one, but every call on a given host takes the same path).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HSDL_GEMM_DISPATCH 1
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(
    std::size_t kc, const float* HSDL_RESTRICT ap,
    const float* HSDL_RESTRICT bp, float* HSDL_RESTRICT c, std::size_t ldc,
    std::size_t rows, std::size_t cols) {
  // 12 accumulators + 2 B vectors + 1 broadcast = 15 of 16 ymm registers.
  __m256 acc[MR][2];
  for (std::size_t r = 0; r < MR; ++r)
    acc[r][0] = acc[r][1] = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * NR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * NR + 8);
    const float* a = ap + p * MR;
    for (std::size_t r = 0; r < MR; ++r) {
      const __m256 ar = _mm256_broadcast_ss(a + r);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  if (rows == MR && cols == NR) {
    for (std::size_t r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      _mm256_storeu_ps(crow,
                       _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
      _mm256_storeu_ps(
          crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
    }
  } else {  // edge tile: spill and add only the valid region
    alignas(32) float tmp[MR][NR];
    for (std::size_t r = 0; r < MR; ++r) {
      _mm256_store_ps(tmp[r], acc[r][0]);
      _mm256_store_ps(tmp[r] + 8, acc[r][1]);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t col = 0; col < cols; ++col) crow[col] += tmp[r][col];
    }
  }
}
#endif

MicroKernelFn select_micro_kernel() {
#ifdef HSDL_GEMM_DISPATCH
  if (cpu::has_avx2_fma()) return micro_kernel_avx2;
#endif
  return micro_kernel_generic;
}

void gemm_blocked(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                  std::size_t k, float alpha, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc) {
  // Re-selected per call (two relaxed loads) so HSDL_FORCE_SCALAR and the
  // cpu::set_force_scalar test hook take effect without process restart.
  const MicroKernelFn micro_kernel = select_micro_kernel();
  const std::size_t nc_max = std::min(n, NC);
  const std::size_t bp_panels = (nc_max + NR - 1) / NR;
  std::vector<float> bpack(std::min(k, KC) * bp_panels * NR);

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      pack_b(b, ldb, trans_b, pc, kc, jc, nc, bpack.data());

      // Row panels of C are independent outputs: safe and bitwise
      // deterministic to split across threads.
      const std::size_t ic_panels = (m + MC - 1) / MC;
      parallel_for(0, ic_panels, 1, [&](std::size_t pb, std::size_t pe) {
        std::vector<float> apack(((MC + MR - 1) / MR) * MR * kc);
        for (std::size_t panel = pb; panel < pe; ++panel) {
          const std::size_t ic = panel * MC;
          const std::size_t mc = std::min(MC, m - ic);
          pack_a(a, lda, trans_a, alpha, ic, mc, pc, kc, apack.data());
          for (std::size_t jr = 0; jr < nc; jr += NR) {
            const std::size_t cols = std::min(NR, nc - jr);
            const float* bp = bpack.data() + (jr / NR) * kc * NR;
            for (std::size_t ir = 0; ir < mc; ir += MR) {
              const std::size_t rows = std::min(MR, mc - ir);
              const float* ap = apack.data() + (ir / MR) * kc * MR;
              micro_kernel(kc, ap, bp,
                           c + (ic + ir) * ldc + jc + jr, ldc, rows, cols);
            }
          }
        }
      });
    }
  }
}

}  // namespace

void gemm_naive(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, float alpha, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float beta, float* c,
                std::size_t ldc) {
  scale_c(m, n, beta, c, ldc);
  if (alpha == 0.0f || m == 0 || n == 0 || k == 0) return;

  if (!trans_a && !trans_b) {
    kernel_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Transposed operands: materialize the transpose once — only tiny
  // problems reach this path, so the copy is cheap.
  std::vector<float> abuf, bbuf;
  const float* ap = a;
  std::size_t alda = lda;
  if (trans_a) {
    abuf.resize(m * k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) abuf[i * k + p] = a[p * lda + i];
    ap = abuf.data();
    alda = k;
  }
  const float* bp = b;
  std::size_t bldb = ldb;
  if (trans_b) {
    bbuf.resize(k * n);
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t j = 0; j < n; ++j) bbuf[p * n + j] = b[j * ldb + p];
    bp = bbuf.data();
    bldb = n;
  }
  kernel_nn(m, n, k, alpha, ap, alda, bp, bldb, c, ldc);
}

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda,
          const float* b, std::size_t ldb, float beta, float* c,
          std::size_t ldc) {
  // Observability only — reads clocks / bumps sharded atomics, never the
  // operands, so instrumented results stay bitwise identical. Disabled
  // path: one relaxed load + branch each, no heap allocation.
  HSDL_TRACE_SPAN("gemm");
  if (metrics::enabled()) {
    static metrics::Counter& flops = metrics::counter("gemm.flops");
    static metrics::Counter& calls = metrics::counter("gemm.calls");
    flops.add(2 * static_cast<std::uint64_t>(m) * n * k);
    calls.increment();
  }
  if (m == 0 || n == 0) return;
  if (alpha == 0.0f || k == 0) {
    scale_c(m, n, beta, c, ldc);
    return;
  }
  if (m * n * k <= kNaiveFlopCutoff) {
    gemm_naive(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
               ldc);
    return;
  }
  scale_c(m, n, beta, c, ldc);
  gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

void matmul(std::size_t m, std::size_t n, std::size_t k, const float* a,
            const float* b, float* c) {
  gemm(false, false, m, n, k, 1.0f, a, k, b, n, 0.0f, c, n);
}

}  // namespace hsdl::nn

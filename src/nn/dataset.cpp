#include "nn/dataset.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace hsdl::nn {

ClassificationDataset::ClassificationDataset(
    std::vector<std::size_t> feature_shape, std::size_t num_classes)
    : feature_shape_(std::move(feature_shape)), num_classes_(num_classes) {
  HSDL_CHECK(!feature_shape_.empty());
  HSDL_CHECK(num_classes >= 2);
  feature_numel_ = 1;
  for (std::size_t e : feature_shape_) {
    HSDL_CHECK(e > 0);
    feature_numel_ *= e;
  }
}

void ClassificationDataset::add(std::vector<float> features,
                                std::size_t label) {
  HSDL_CHECK_MSG(features.size() == feature_numel_,
                 "sample has " << features.size() << " values, expected "
                               << feature_numel_);
  HSDL_CHECK(label < num_classes_);
  storage_.insert(storage_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

const float* ClassificationDataset::features(std::size_t i) const {
  HSDL_CHECK(i < size());
  return storage_.data() + i * feature_numel_;
}

std::size_t ClassificationDataset::count_label(std::size_t label) const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), label));
}

Tensor ClassificationDataset::gather(
    const std::vector<std::size_t>& idx) const {
  HSDL_CHECK(!idx.empty());
  std::vector<std::size_t> shape;
  shape.push_back(idx.size());
  shape.insert(shape.end(), feature_shape_.begin(), feature_shape_.end());
  Tensor out(shape);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const float* src = features(idx[i]);
    std::copy(src, src + feature_numel_, out.data() + i * feature_numel_);
  }
  return out;
}

Tensor ClassificationDataset::gather(std::size_t begin,
                                     std::size_t end) const {
  HSDL_CHECK(begin < end && end <= size());
  std::vector<std::size_t> shape;
  shape.push_back(end - begin);
  shape.insert(shape.end(), feature_shape_.begin(), feature_shape_.end());
  Tensor out(shape);
  const float* src = storage_.data() + begin * feature_numel_;
  std::copy(src, src + (end - begin) * feature_numel_, out.data());
  return out;
}

Tensor ClassificationDataset::gather_onehot(
    const std::vector<std::size_t>& idx) const {
  Tensor out({idx.size(), num_classes_});
  for (std::size_t i = 0; i < idx.size(); ++i) {
    HSDL_CHECK(idx[i] < size());
    out.at(i, labels_[idx[i]]) = 1.0f;
  }
  return out;
}

std::vector<std::size_t> ClassificationDataset::sample_batch(
    std::size_t batch, Rng& rng) const {
  HSDL_CHECK(batch > 0 && !empty());
  std::vector<std::size_t> idx(batch);
  for (std::size_t& v : idx) v = rng.index(size());
  return idx;
}

std::vector<std::size_t> ClassificationDataset::sample_batch_balanced(
    std::size_t batch, Rng& rng) const {
  HSDL_CHECK(batch > 0 && !empty());
  // Index pool per class (built per call; dataset mutation stays cheap).
  std::vector<std::vector<std::size_t>> pools(num_classes_);
  for (std::size_t i = 0; i < size(); ++i) pools[labels_[i]].push_back(i);
  for (const auto& pool : pools)
    HSDL_CHECK_MSG(!pool.empty(),
                   "balanced sampling requires every class present");
  // Random rotation offset so batches smaller than the class count (e.g.
  // the SGD mode's batch of 1) still draw every class over time.
  const std::size_t start = rng.index(num_classes_);
  std::vector<std::size_t> idx(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto& pool = pools[(start + i) % num_classes_];
    idx[i] = pool[rng.index(pool.size())];
  }
  return idx;
}

}  // namespace hsdl::nn

#include "nn/workspace.hpp"

#include <limits>
#include <utility>

namespace hsdl::nn {
namespace {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

}  // namespace

Tensor WorkspaceArena::take(std::vector<std::size_t> shape) {
  const std::size_t numel = shape_numel(shape);
  ++takes_;
  // Smallest adequate pooled buffer; first match on ties keeps the
  // assignment deterministic run to run.
  std::size_t best = pool_.size();
  std::size_t best_cap = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    const std::size_t cap = pool_[i].capacity();
    if (cap >= numel && cap < best_cap) {
      best = i;
      best_cap = cap;
    }
  }
  std::vector<float> storage;
  if (best < pool_.size()) {
    storage = std::move(pool_[best]);
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(best));
    ++reuses_;
  } else {
    ++allocations_;
  }
  storage.resize(numel);  // within capacity on the reuse path: no alloc
  return Tensor::from_data(std::move(shape), std::move(storage));
}

void WorkspaceArena::recycle(Tensor t) {
  std::vector<float> storage = std::move(t.vec());
  if (storage.capacity() == 0) return;
  pool_.push_back(std::move(storage));
}

std::span<float> WorkspaceArena::scratch(std::size_t n) {
  if (scratch_used_ == scratch_.size()) scratch_.emplace_back();
  std::vector<float>& buf = scratch_[scratch_used_++];
  if (buf.capacity() < n) ++allocations_;
  buf.resize(n);
  return {buf.data(), n};
}

WorkspaceArena::Stats WorkspaceArena::stats() const {
  Stats s;
  s.takes = takes_;
  s.allocations = allocations_;
  s.reuses = reuses_;
  for (const auto& b : pool_) s.bytes_reserved += b.capacity() * sizeof(float);
  for (const auto& b : scratch_)
    s.bytes_reserved += b.capacity() * sizeof(float);
  return s;
}

}  // namespace hsdl::nn

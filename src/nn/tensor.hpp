// Dense float tensor with dynamic shape.
//
// The network code uses NCHW layout for feature maps ([batch, channels,
// height, width]) and [batch, features] for fully connected activations.
// Tensors are plain value types: copyable, movable, contiguous row-major.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace hsdl::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f);
  Tensor(std::initializer_list<std::size_t> shape, float fill = 0.0f);

  static Tensor from_data(std::vector<std::size_t> shape,
                          std::vector<float> data);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t dim() const { return shape_.size(); }
  std::size_t extent(std::size_t axis) const;
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Multi-dimensional accessors for the common ranks.
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  float& at(std::size_t i, std::size_t j, std::size_t k);
  float at(std::size_t i, std::size_t j, std::size_t k) const;
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  /// Reinterprets the shape; total element count must be unchanged.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  /// this += other (shapes must match).
  void add(const Tensor& other);
  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale(float alpha);

  /// Sum / min / max / L2-norm over all elements.
  double sum() const;
  float min() const;
  float max() const;
  double l2_norm() const;

  /// "2x3x4" style shape string for diagnostics.
  std::string shape_str() const;

  friend bool same_shape(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_;
  }

 private:
  std::size_t offset2(std::size_t i, std::size_t j) const;
  std::size_t offset3(std::size_t i, std::size_t j, std::size_t k) const;
  std::size_t offset4(std::size_t i, std::size_t j, std::size_t k,
                      std::size_t l) const;

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace hsdl::nn

#include "nn/pool.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  HSDL_CHECK(window > 0);
}

std::string MaxPool2d::name() const {
  std::ostringstream os;
  os << "maxpool" << window_ << "x" << window_;
  return os.str();
}

std::vector<std::size_t> MaxPool2d::output_shape(
    const std::vector<std::size_t>& in) const {
  HSDL_CHECK(in.size() == 4);
  HSDL_CHECK_MSG(in[2] % window_ == 0 && in[3] % window_ == 0,
                 "pool window does not tile the input");
  return {in[0], in[1], in[2] / window_, in[3] / window_};
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*train*/) {
  in_shape_ = input.shape();
  const auto out_shape = output_shape(in_shape_);
  const std::size_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                    w = in_shape_[3];
  const std::size_t oh = out_shape[2], ow = out_shape[3];

  Tensor out(out_shape);
  argmax_.assign(out.numel(), 0);
  std::size_t oidx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* img = input.data() + (i * c + ch) * h * w;
      const std::size_t base = (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = img[(oy * window_) * w + ox * window_];
          std::size_t best_idx = (oy * window_) * w + ox * window_;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              const std::size_t idx =
                  (oy * window_ + dy) * w + ox * window_ + dx;
              if (img[idx] > best) {
                best = img[idx];
                best_idx = idx;
              }
            }
          }
          out[oidx] = best;
          argmax_[oidx] = base + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::infer(const Tensor& input) const {
  const auto& shp = input.shape();
  const auto out_shape = output_shape(shp);
  const std::size_t n = shp[0], c = shp[1], h = shp[2], w = shp[3];
  const std::size_t oh = out_shape[2], ow = out_shape[3];

  Tensor out(out_shape);
  std::size_t oidx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* img = input.data() + (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = img[(oy * window_) * w + ox * window_];
          for (std::size_t dy = 0; dy < window_; ++dy)
            for (std::size_t dx = 0; dx < window_; ++dx)
              best = std::max(
                  best, img[(oy * window_ + dy) * w + ox * window_ + dx]);
          out[oidx] = best;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::infer(const Tensor& input, WorkspaceArena& ws) const {
  const auto& shp = input.shape();
  const auto out_shape = output_shape(shp);
  const std::size_t n = shp[0], c = shp[1], h = shp[2], w = shp[3];
  const std::size_t oh = out_shape[2], ow = out_shape[3];

  Tensor out = ws.take(out_shape);
  std::size_t oidx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* img = input.data() + (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oidx) {
          float best = img[(oy * window_) * w + ox * window_];
          for (std::size_t dy = 0; dy < window_; ++dy)
            for (std::size_t dx = 0; dx < window_; ++dx)
              best = std::max(
                  best, img[(oy * window_ + dy) * w + ox * window_ + dx]);
          out[oidx] = best;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(!in_shape_.empty(), "backward before forward");
  HSDL_CHECK(grad_output.numel() == argmax_.size());
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_output.numel(); ++i)
    grad_in[argmax_[i]] += grad_output[i];
  return grad_in;
}

}  // namespace hsdl::nn

#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "common/io.hpp"

namespace hsdl::nn {
namespace {

// v2 container (all integers little-endian):
//   "HSDLNN2\0" | u32 version=2 | u32 flags=0 | u64 param_count
//   per param, a record starting at offset R:
//     u32 name_len | name | u32 ndim | u64 dim[ndim]
//     u64 payload_bytes | f32 payload (little-endian)
//     u32 record_crc — crc32 of bytes [R, here)
//   u32 file_crc — crc32 of bytes [0, here)
// and nothing after: loaders reject trailing data.
constexpr char kMagicV2[] = "HSDLNN2\0";
constexpr std::size_t kMaxDims = 16;

// Legacy v1: "HSDLNN1\n", native-endian u64 fields, raw float payloads,
// no checksums. Read-only.
constexpr char kMagicV1[] = "HSDLNN1\n";
constexpr std::size_t kMagicV1Len = sizeof(kMagicV1) - 1;

std::uint64_t read_u64_native(io::ByteReader& r) {
  std::uint64_t v = 0;
  const std::string_view b = r.bytes(sizeof(v));
  std::memcpy(&v, b.data(), sizeof(v));
  return v;
}

/// v1 loader: native-endian fields exactly as the original writer
/// emitted them, now with positioned truncation errors and a strict
/// end-of-buffer check.
void load_params_v1(io::ByteReader& r, const std::vector<Param*>& params) {
  const std::uint64_t n = read_u64_native(r);
  HSDL_CHECK_MSG(n == params.size(), "checkpoint has " << n
                                                       << " params, model has "
                                                       << params.size());
  for (Param* p : params) {
    const std::uint64_t name_len = read_u64_native(r);
    if (name_len >= (1u << 20))
      r.fail("implausible param name length in v1 checkpoint");
    const std::string name(r.bytes(name_len));
    HSDL_CHECK_MSG(name == p->name, "checkpoint param '"
                                        << name << "' where model expects '"
                                        << p->name << "'");
    const std::uint64_t ndim = read_u64_native(r);
    if (ndim > kMaxDims) r.fail("implausible rank in v1 checkpoint");
    std::vector<std::size_t> shape(ndim);
    for (auto& e : shape) e = read_u64_native(r);
    HSDL_CHECK_MSG(shape == p->value.shape(),
                   "shape mismatch for param '" << name << "'");
    const std::string_view payload =
        r.bytes(p->value.numel() * sizeof(float));
    std::memcpy(p->value.data(), payload.data(), payload.size());
  }
  r.expect_end();
}

void load_params_v2(io::ByteReader& r, std::string_view data,
                    const std::vector<Param*>& params) {
  io::read_format_header(r, std::string_view(kMagicV2, io::kMagicSize),
                         kCheckpointVersion, kCheckpointVersion);
  const std::uint64_t n = r.u64();
  HSDL_CHECK_MSG(n == params.size(), "checkpoint has " << n
                                                       << " params, model has "
                                                       << params.size());
  for (Param* p : params) {
    const std::size_t record_begin = r.pos();
    const std::string name = r.str();
    HSDL_CHECK_MSG(name == p->name, "checkpoint param '"
                                        << name << "' where model expects '"
                                        << p->name << "'");
    const std::uint32_t ndim = r.u32();
    if (ndim > kMaxDims) r.fail("implausible rank for param '" + name + "'");
    std::vector<std::size_t> shape(ndim);
    for (auto& e : shape) e = static_cast<std::size_t>(r.u64());
    HSDL_CHECK_MSG(shape == p->value.shape(),
                   "shape mismatch for param '" << name << "'");
    const std::uint64_t payload_bytes = r.u64();
    if (payload_bytes != p->value.numel() * sizeof(float))
      r.fail("payload byte count does not match the shape of param '" +
             name + "'");
    r.f32_array(p->value.data(), p->value.numel());
    const std::uint32_t stored_record_crc = r.u32();
    const std::uint32_t actual_record_crc = io::crc32(
        data.substr(record_begin, r.pos() - sizeof(std::uint32_t) -
                                      record_begin));
    if (stored_record_crc != actual_record_crc)
      r.fail("checksum mismatch in record of param '" + name +
             "' (corrupt checkpoint)");
  }
  const std::uint32_t stored_file_crc = r.u32();
  const std::uint32_t actual_file_crc =
      io::crc32(data.substr(0, r.pos() - sizeof(std::uint32_t)));
  if (stored_file_crc != actual_file_crc)
    r.fail("whole-file checksum mismatch (corrupt checkpoint)");
  r.expect_end();
}

}  // namespace

std::string serialize_params(const std::vector<Param*>& params) {
  io::ByteWriter w;
  io::write_format_header(w, std::string_view(kMagicV2, io::kMagicSize),
                          kCheckpointVersion, /*flags=*/0);
  w.u64(params.size());
  for (const Param* p : params) {
    const std::size_t record_begin = w.size();
    w.str(p->name);
    w.u32(static_cast<std::uint32_t>(p->value.dim()));
    for (std::size_t e : p->value.shape()) w.u64(e);
    w.u64(p->value.numel() * sizeof(float));
    w.f32_array(p->value.data(), p->value.numel());
    w.u32(io::crc32(std::string_view(w.buffer()).substr(record_begin)));
  }
  w.u32(io::crc32(w.buffer()));
  return w.take();
}

void deserialize_params(std::string_view data,
                        const std::vector<Param*>& params,
                        const std::string& context) {
  io::ByteReader r(data, context);
  if (data.size() >= kMagicV1Len &&
      data.substr(0, kMagicV1Len) == std::string_view(kMagicV1, kMagicV1Len)) {
    r.bytes(kMagicV1Len);  // consume the legacy magic
    load_params_v1(r, params);
    return;
  }
  load_params_v2(r, data, params);
}

void save_params(std::ostream& os, const std::vector<Param*>& params) {
  const std::string buf = serialize_params(params);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  HSDL_CHECK_MSG(os.good(), "checkpoint write failed");
}

void load_params(std::istream& is, const std::vector<Param*>& params) {
  deserialize_params(io::read_stream(is), params);
}

void save_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  io::atomic_write_file(path, serialize_params(params));
}

void load_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  deserialize_params(io::read_file(path), params, path);
}

std::vector<Tensor> snapshot_params(const std::vector<Param*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const Param* p : params) out.push_back(p->value);
  return out;
}

void restore_params(const std::vector<Tensor>& snapshot,
                    const std::vector<Param*>& params) {
  HSDL_CHECK(snapshot.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    HSDL_CHECK(same_shape(snapshot[i], params[i]->value));
    params[i]->value = snapshot[i];
  }
}

}  // namespace hsdl::nn

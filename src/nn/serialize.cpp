#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace hsdl::nn {
namespace {

constexpr char kMagic[] = "HSDLNN1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  HSDL_CHECK_MSG(is.good(), "truncated checkpoint");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  HSDL_CHECK_MSG(n < (1u << 20), "implausible string length in checkpoint");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  HSDL_CHECK_MSG(is.good(), "truncated checkpoint");
  return s;
}

}  // namespace

void save_params(std::ostream& os, const std::vector<Param*>& params) {
  os.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  write_u64(os, params.size());
  for (const Param* p : params) {
    write_string(os, p->name);
    write_u64(os, p->value.dim());
    for (std::size_t e : p->value.shape()) write_u64(os, e);
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  HSDL_CHECK_MSG(os.good(), "checkpoint write failed");
}

void load_params(std::istream& is, const std::vector<Param*>& params) {
  char magic[kMagicLen];
  is.read(magic, static_cast<std::streamsize>(kMagicLen));
  HSDL_CHECK_MSG(is.good() && std::string(magic, kMagicLen) == kMagic,
                 "not an HSDL checkpoint");
  const std::uint64_t n = read_u64(is);
  HSDL_CHECK_MSG(n == params.size(), "checkpoint has " << n
                                                       << " params, model has "
                                                       << params.size());
  for (Param* p : params) {
    const std::string name = read_string(is);
    HSDL_CHECK_MSG(name == p->name, "checkpoint param '"
                                        << name << "' where model expects '"
                                        << p->name << "'");
    const std::uint64_t ndim = read_u64(is);
    std::vector<std::size_t> shape(ndim);
    for (auto& e : shape) e = read_u64(is);
    HSDL_CHECK_MSG(shape == p->value.shape(),
                   "shape mismatch for param '" << name << "'");
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    HSDL_CHECK_MSG(is.good(), "truncated checkpoint payload");
  }
}

void save_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  std::ofstream os(path, std::ios::binary);
  HSDL_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  save_params(os, params);
}

void load_params_file(const std::string& path,
                      const std::vector<Param*>& params) {
  std::ifstream is(path, std::ios::binary);
  HSDL_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  load_params(is, params);
}

std::vector<Tensor> snapshot_params(const std::vector<Param*>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const Param* p : params) out.push_back(p->value);
  return out;
}

void restore_params(const std::vector<Tensor>& snapshot,
                    const std::vector<Param*>& params) {
  HSDL_CHECK(snapshot.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    HSDL_CHECK(same_shape(snapshot[i], params[i]->value));
    params[i]->value = snapshot[i];
  }
}

}  // namespace hsdl::nn

// Direct 2-D convolution kernels (no im2col materialization).
//
// The im2col+GEMM path pays a full [in_c*k*k x oh*ow] buffer write and
// read per sample before a single multiply happens. These kernels walk
// the input in place instead, accumulating each output row with the
// exact arithmetic the im2col path's reference GEMM performs:
//
//   * outputs start at +0.0 and accumulate weight terms in ascending
//     p = (in_channel, ky, kx) order — the im2col row order;
//   * zero weights are skipped, mirroring gemm_naive's `av == 0` skip;
//   * out-of-bounds (padded) input positions are skipped, which is
//     bitwise safe: the padded contribution is w * 0.0 = ±0.0, and an
//     accumulator that starts at +0.0 can never become -0.0 under
//     addition, so adding ±0.0 is always an exact no-op;
//   * the AVX2 variant uses separate multiply and add (never FMA), so
//     its lanes round exactly like the scalar loop.
//
// Consequently conv2d_direct() is bitwise identical to
// im2col + gemm_naive + bias for every shape, on every dispatch path.
// (For large shapes the im2col path used to route through the blocked
// FMA GEMM, which rounds differently; the direct kernel pins those
// shapes to the reference accumulation order instead — see DESIGN.md
// §12.)
#pragma once

#include <cstddef>

namespace hsdl::nn {

struct ConvDirectShape {
  std::size_t in_channels = 0;
  std::size_t height = 0;  ///< input H
  std::size_t width = 0;   ///< input W
  std::size_t out_channels = 0;
  std::size_t kernel = 0;
  std::size_t stride = 1;
  std::size_t padding = 0;

  std::size_t out_height() const {
    return (height + 2 * padding - kernel) / stride + 1;
  }
  std::size_t out_width() const {
    return (width + 2 * padding - kernel) / stride + 1;
  }
};

/// One-sample direct convolution: out[oc][oy][ox] =
/// bias[oc] + sum_p W[oc][p] * in(p, oy, ox), with optional fused ReLU
/// applied after the bias add (max with +0.0 via `v > 0 ? v : 0`, the
/// same predicate as Relu::infer). `in` is [in_c, H, W], `weight` is
/// [out_c, in_c*k*k], `out` is [out_c, oh, ow]; all row-major and fully
/// overwritten. Dispatches to AVX2 when available (see common/cpuinfo).
void conv2d_direct(const float* in, const float* weight, const float* bias,
                   const ConvDirectShape& shape, bool fuse_relu, float* out);

/// Scalar reference path, exposed so tests can pin the dispatch variants
/// against each other bitwise.
void conv2d_direct_scalar(const float* in, const float* weight,
                          const float* bias, const ConvDirectShape& shape,
                          bool fuse_relu, float* out);

}  // namespace hsdl::nn

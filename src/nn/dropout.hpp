// Inverted dropout layer.
//
// During training each activation is zeroed with probability p and the
// survivors are scaled by 1/(1-p), so inference is a plain pass-through
// (the paper applies 50 % dropout on the first FC layer).
#pragma once

#include "nn/layer.hpp"

namespace hsdl::nn {

class Dropout final : public Layer {
 public:
  /// `rng` must outlive the layer (typically the model's generator).
  Dropout(double p, Rng& rng);

  std::string name() const override;
  Tensor forward(const Tensor& input, bool train) override;
  /// Inverted dropout is a pass-through at inference.
  Tensor infer(const Tensor& input) const override { return input; }
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override {
    return input_shape;
  }

  double p() const { return p_; }

 private:
  double p_;
  Rng* rng_;
  Tensor mask_;  // scale factor per element used in the last forward
};

}  // namespace hsdl::nn

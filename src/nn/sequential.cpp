#include "nn/sequential.hpp"

#include "common/check.hpp"
#include "common/refmode.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {

Tensor Sequential::forward(const Tensor& input, bool train) {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, train);
  return x;
}

// Serving walk with peephole fusion. Every rewrite below preserves the
// per-layer arithmetic bitwise — only intermediate materialization is
// elided:
//   * Conv2d + Relu  -> Conv2d::infer_relu (ReLU inside the bias pass)
//   * Linear + Relu  -> Linear::infer_relu
//   * Dropout        -> skipped (identity at inference; the plain walk
//                       still pays a full tensor copy)
//   * Flatten        -> in-place reshape, stealing the owned buffer
//                       instead of copying it
// Reference mode (common/refmode.hpp) bypasses this and runs the
// original one-layer-at-a-time loops.
Tensor Sequential::fused_infer(const Tensor& input, std::size_t n_layers,
                               WorkspaceArena* ws) const {
  HSDL_CHECK_MSG(n_layers >= 1 && n_layers <= layers_.size(),
                 "bad layer prefix length");
  Tensor x;
  bool owned = false;  // x holds the current activation
  const Tensor* cur = &input;
  for (std::size_t i = 0; i < n_layers; ++i) {
    Layer* l = layers_[i].get();
    if (dynamic_cast<const Dropout*>(l) != nullptr) continue;
    if (dynamic_cast<const Flatten*>(l) != nullptr && owned) {
      x = Tensor::from_data(l->output_shape(x.shape()), std::move(x.vec()));
      continue;
    }
    const bool next_relu =
        i + 1 < n_layers &&
        dynamic_cast<const Relu*>(layers_[i + 1].get()) != nullptr;
    Tensor y;
    if (const auto* conv = dynamic_cast<const Conv2d*>(l);
        conv != nullptr && next_relu) {
      y = ws != nullptr ? conv->infer_relu(*cur, *ws) : conv->infer_relu(*cur);
      ++i;
    } else if (const auto* lin = dynamic_cast<const Linear*>(l);
               lin != nullptr && next_relu) {
      y = ws != nullptr ? lin->infer_relu(*cur, *ws) : lin->infer_relu(*cur);
      ++i;
    } else {
      y = ws != nullptr ? l->infer(*cur, *ws) : l->infer(*cur);
    }
    if (owned && ws != nullptr) ws->recycle(std::move(x));
    x = std::move(y);
    owned = true;
    cur = &x;
  }
  if (!owned) return input;  // prefix was all pass-throughs
  return x;
}

Tensor Sequential::infer(const Tensor& input) const {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  if (!runtime::reference_mode())
    return fused_infer(input, layers_.size(), nullptr);
  Tensor x = input;
  for (const auto& l : layers_) x = l->infer(x);
  return x;
}

Tensor Sequential::infer(const Tensor& input, WorkspaceArena& ws) const {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  if (!runtime::reference_mode())
    return fused_infer(input, layers_.size(), &ws);
  Tensor x = layers_.front()->infer(input, ws);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    Tensor y = layers_[i]->infer(x, ws);
    ws.recycle(std::move(x));
    x = std::move(y);
  }
  return x;
}

Tensor Sequential::infer_prefix(const Tensor& input, std::size_t n_layers,
                                WorkspaceArena& ws) const {
  return fused_infer(input, n_layers, &ws);
}

Tensor Sequential::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

std::vector<std::size_t> Sequential::output_shape(
    const std::vector<std::size_t>& input_shape) const {
  std::vector<std::size_t> s = input_shape;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

std::vector<std::pair<std::string, std::vector<std::size_t>>>
Sequential::summary(const std::vector<std::size_t>& input_shape) const {
  std::vector<std::pair<std::string, std::vector<std::size_t>>> out;
  std::vector<std::size_t> s = input_shape;
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    out.emplace_back(l->name(), s);
  }
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace hsdl::nn

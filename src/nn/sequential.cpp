#include "nn/sequential.hpp"

#include "common/check.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {

Tensor Sequential::forward(const Tensor& input, bool train) {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, train);
  return x;
}

Tensor Sequential::infer(const Tensor& input) const {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  Tensor x = input;
  for (const auto& l : layers_) x = l->infer(x);
  return x;
}

Tensor Sequential::infer(const Tensor& input, WorkspaceArena& ws) const {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  Tensor x = layers_.front()->infer(input, ws);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    Tensor y = layers_[i]->infer(x, ws);
    ws.recycle(std::move(x));
    x = std::move(y);
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(!layers_.empty(), "empty sequential");
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

std::vector<std::size_t> Sequential::output_shape(
    const std::vector<std::size_t>& input_shape) const {
  std::vector<std::size_t> s = input_shape;
  for (const auto& l : layers_) s = l->output_shape(s);
  return s;
}

std::vector<std::pair<std::string, std::vector<std::size_t>>>
Sequential::summary(const std::vector<std::size_t>& input_shape) const {
  std::vector<std::pair<std::string, std::vector<std::size_t>>> out;
  std::vector<std::size_t> s = input_shape;
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    out.emplace_back(l->name(), s);
  }
  return out;
}

std::size_t Sequential::param_count() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace hsdl::nn

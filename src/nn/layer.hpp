// Layer interface for the feed-forward / back-propagation engine.
//
// Layers are stateful: forward() caches whatever backward() needs (inputs,
// masks, argmax indices), and backward() accumulates parameter gradients
// into Param::grad. A training step is:
//   seq.zero_grad(); y = seq.forward(x, /*train=*/true);
//   loss.forward(y, targets); seq.backward(loss.backward());
//   optimizer.step(seq.params());
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace hsdl::nn {

class WorkspaceArena;

/// A learnable parameter and its gradient accumulator.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string param_name, Tensor init)
      : name(std::move(param_name)),
        value(std::move(init)),
        grad(value.shape()) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer name (used by summaries and serialization).
  virtual std::string name() const = 0;

  /// Computes outputs; `train` enables training-only behaviour (dropout).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Inference-only forward pass: same outputs as forward(input, false)
  /// but touches no layer state, so one model can serve many threads
  /// concurrently (parallel evaluation, full-chip scanning). backward()
  /// must not be called after infer().
  virtual Tensor infer(const Tensor& input) const = 0;

  /// Arena-backed inference: identical arithmetic (and therefore bitwise
  /// identical outputs) to infer(input), but the output tensor and any
  /// internal scratch are drawn from `ws` instead of the heap, so
  /// steady-state serving allocates nothing. The returned tensor belongs
  /// to the arena's pool discipline — callers recycle() it when done.
  /// The default falls back to the allocating path for layers without an
  /// arena-aware kernel.
  virtual Tensor infer(const Tensor& input, WorkspaceArena& ws) const {
    (void)ws;
    return infer(input);
  }

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after a forward() on the same input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Output shape for a given input shape (excluding batch handling —
  /// shapes include the batch axis and pass through unchanged).
  virtual std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const = 0;

  void zero_grad() {
    for (Param* p : params()) p->grad.zero();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace hsdl::nn

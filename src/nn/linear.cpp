#include "nn/linear.hpp"

#include <sstream>

#include "common/check.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {
namespace {

Tensor make_linear_weight(std::size_t in, std::size_t out, Rng& rng) {
  Tensor w({out, in});
  he_normal_init(w, in, rng);
  return w;
}

}  // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("weight", make_linear_weight(in_features, out_features, rng)),
      bias_("bias", Tensor({out_features})) {
  HSDL_CHECK(in_features > 0 && out_features > 0);
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "fc(" << in_ << "->" << out_ << ")";
  return os.str();
}

std::vector<std::size_t> Linear::output_shape(
    const std::vector<std::size_t>& in) const {
  HSDL_CHECK(in.size() == 2 && in[1] == in_);
  return {in[0], out_};
}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  input_ = input;
  return infer(input);
}

Tensor Linear::infer(const Tensor& input) const {
  HSDL_CHECK_MSG(input.dim() == 2 && input.extent(1) == in_,
                 "linear expects [N," << in_ << "], got "
                                      << input.shape_str());
  const std::size_t n = input.extent(0);
  Tensor out({n, out_});
  // out = x [n x in] * W^T [in x out]
  gemm(false, true, n, out_, in_, 1.0f, input.data(), in_,
       weight_.value.data(), in_, 0.0f, out.data(), out_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_; ++j) out.at(i, j) += bias_.value[j];
  return out;
}

Tensor Linear::infer(const Tensor& input, WorkspaceArena& ws) const {
  HSDL_CHECK_MSG(input.dim() == 2 && input.extent(1) == in_,
                 "linear expects [N," << in_ << "], got "
                                      << input.shape_str());
  const std::size_t n = input.extent(0);
  Tensor out = ws.take({n, out_});
  gemm(false, true, n, out_, in_, 1.0f, input.data(), in_,
       weight_.value.data(), in_, 0.0f, out.data(), out_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_; ++j) out.at(i, j) += bias_.value[j];
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(!input_.empty(), "backward before forward");
  const std::size_t n = input_.extent(0);
  HSDL_CHECK(grad_output.shape() == std::vector<std::size_t>({n, out_}));

  // dW += gout^T [out x n] * x [n x in]
  gemm(true, false, out_, in_, n, 1.0f, grad_output.data(), out_,
       input_.data(), in_, 1.0f, weight_.grad.data(), in_);
  // db += column sums of gout
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_; ++j)
      bias_.grad[j] += grad_output.at(i, j);
  // dx = gout [n x out] * W [out x in]
  Tensor grad_in({n, in_});
  gemm(false, false, n, in_, out_, 1.0f, grad_output.data(), out_,
       weight_.value.data(), in_, 0.0f, grad_in.data(), in_);
  return grad_in;
}

}  // namespace hsdl::nn

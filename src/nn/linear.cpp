#include "nn/linear.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/refmode.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {
namespace {

Tensor make_linear_weight(std::size_t in, std::size_t out, Rng& rng) {
  Tensor w({out, in});
  he_normal_init(w, in, rng);
  return w;
}

}  // namespace

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("weight", make_linear_weight(in_features, out_features, rng)),
      bias_("bias", Tensor({out_features})) {
  HSDL_CHECK(in_features > 0 && out_features > 0);
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "fc(" << in_ << "->" << out_ << ")";
  return os.str();
}

std::vector<std::size_t> Linear::output_shape(
    const std::vector<std::size_t>& in) const {
  HSDL_CHECK(in.size() == 2 && in[1] == in_);
  return {in[0], out_};
}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  input_ = input;
  return infer(input);
}

void Linear::matmul_epilogue(const Tensor& input, Epilogue epi,
                             Tensor& out) const {
  HSDL_CHECK_MSG(input.dim() == 2 && input.extent(1) == in_,
                 "linear expects [N," << in_ << "], got "
                                      << input.shape_str());
  const std::size_t n = input.extent(0);
  // out = x [n x in] * W^T [in x out]. Serving pins the naive kernel:
  // each output row is an independent ascending-k reduction, so the
  // result is identical for every batch size and the engine's batched
  // forward stays bitwise equal to the per-clip path. (The blocked GEMM
  // flips to an FMA microkernel once batch * out * in crosses its flop
  // cutoff, which rounds differently.) The FC layers are a rounding
  // error of serving time next to the convs, so nothing is lost.
  // Reference mode keeps the historical cutoff dispatch.
  if (runtime::reference_mode()) {
    gemm(false, true, n, out_, in_, 1.0f, input.data(), in_,
         weight_.value.data(), in_, 0.0f, out.data(), out_);
  } else {
    gemm_naive(false, true, n, out_, in_, 1.0f, input.data(), in_,
               weight_.value.data(), in_, 0.0f, out.data(), out_);
  }
  // Fused epilogues run the same arithmetic the separate Relu / softmax
  // layers would — the only thing saved is the intermediate tensor.
  switch (epi) {
    case Epilogue::kNone:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < out_; ++j) out.at(i, j) += bias_.value[j];
      break;
    case Epilogue::kRelu:
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < out_; ++j) {
          const float v = out.at(i, j) + bias_.value[j];
          out.at(i, j) = v > 0.0f ? v : 0.0f;
        }
      }
      break;
    case Epilogue::kSoftmax:
      for (std::size_t i = 0; i < n; ++i) {
        float* row = out.data() + i * out_;
        for (std::size_t j = 0; j < out_; ++j) row[j] += bias_.value[j];
        softmax_row(row, out_, row);
      }
      break;
  }
}

Tensor Linear::infer(const Tensor& input) const {
  Tensor out({input.extent(0), out_});
  matmul_epilogue(input, Epilogue::kNone, out);
  return out;
}

Tensor Linear::infer(const Tensor& input, WorkspaceArena& ws) const {
  Tensor out = ws.take({input.extent(0), out_});
  matmul_epilogue(input, Epilogue::kNone, out);
  return out;
}

Tensor Linear::infer_relu(const Tensor& input) const {
  Tensor out({input.extent(0), out_});
  matmul_epilogue(input, Epilogue::kRelu, out);
  return out;
}

Tensor Linear::infer_relu(const Tensor& input, WorkspaceArena& ws) const {
  Tensor out = ws.take({input.extent(0), out_});
  matmul_epilogue(input, Epilogue::kRelu, out);
  return out;
}

Tensor Linear::infer_softmax(const Tensor& input) const {
  Tensor out({input.extent(0), out_});
  matmul_epilogue(input, Epilogue::kSoftmax, out);
  return out;
}

Tensor Linear::infer_softmax(const Tensor& input, WorkspaceArena& ws) const {
  Tensor out = ws.take({input.extent(0), out_});
  matmul_epilogue(input, Epilogue::kSoftmax, out);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(!input_.empty(), "backward before forward");
  const std::size_t n = input_.extent(0);
  HSDL_CHECK(grad_output.shape() == std::vector<std::size_t>({n, out_}));

  // dW += gout^T [out x n] * x [n x in]
  gemm(true, false, out_, in_, n, 1.0f, grad_output.data(), out_,
       input_.data(), in_, 1.0f, weight_.grad.data(), in_);
  // db += column sums of gout
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < out_; ++j)
      bias_.grad[j] += grad_output.at(i, j);
  // dx = gout [n x out] * W [out x in]
  Tensor grad_in({n, in_});
  gemm(false, false, n, in_, out_, 1.0f, grad_output.data(), out_,
       weight_.value.data(), in_, 0.0f, grad_in.data(), in_);
  return grad_in;
}

}  // namespace hsdl::nn

#include "nn/flatten.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {

std::vector<std::size_t> Flatten::output_shape(
    const std::vector<std::size_t>& in) const {
  HSDL_CHECK(in.size() >= 2);
  std::size_t features = 1;
  for (std::size_t i = 1; i < in.size(); ++i) features *= in[i];
  return {in[0], features};
}

Tensor Flatten::forward(const Tensor& input, bool /*train*/) {
  in_shape_ = input.shape();
  return input.reshaped(output_shape(in_shape_));
}

Tensor Flatten::infer(const Tensor& input, WorkspaceArena& ws) const {
  Tensor out = ws.take(output_shape(input.shape()));
  std::copy(input.data(), input.data() + input.numel(), out.data());
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  HSDL_CHECK_MSG(!in_shape_.empty(), "backward before forward");
  return grad_output.reshaped(in_shape_);
}

}  // namespace hsdl::nn

// Max-pooling layer.
#pragma once

#include "nn/layer.hpp"

namespace hsdl::nn {

/// Non-overlapping max pooling (paper: 2x2, stride 2). Input spatial size
/// must be divisible by the window.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window = 2);

  std::string name() const override;
  Tensor forward(const Tensor& input, bool train) override;
  Tensor infer(const Tensor& input) const override;
  Tensor infer(const Tensor& input, WorkspaceArena& ws) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<std::size_t> output_shape(
      const std::vector<std::size_t>& input_shape) const override;

  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  std::vector<std::size_t> in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

}  // namespace hsdl::nn

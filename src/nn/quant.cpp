#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define HSDL_QUANT_AVX2 1
#endif

#include "common/check.hpp"
#include "common/cpuinfo.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {
namespace {

std::uint8_t saturate_u7(long v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0L, 127L));
}

ActQuant observe(const Tensor& x) {
  float lo = x[0], hi = x[0];
  for (std::size_t i = 1; i < x.numel(); ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  return calibrate_act(lo, hi);
}

/// Per-output-channel symmetric weight quantization of `rows` rows of
/// `cols` weights. Fills qw, per-row int sums and per-row combined
/// dequant scale s_in * sw[row].
void quantize_weights(const float* w, std::size_t rows, std::size_t cols,
                      float in_scale, std::vector<std::int8_t>* qw,
                      std::vector<std::int32_t>* wsum,
                      std::vector<float>* combined) {
  qw->resize(rows * cols);
  wsum->resize(rows);
  combined->resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float m = 0.0f;
    for (std::size_t j = 0; j < cols; ++j) m = std::max(m, std::fabs(row[j]));
    const float sw = m > 0.0f ? m / 127.0f : 1.0f;
    std::int32_t sum = 0;
    for (std::size_t j = 0; j < cols; ++j) {
      const long q = std::clamp(std::lround(row[j] / sw), -127L, 127L);
      (*qw)[r * cols + j] = static_cast<std::int8_t>(q);
      sum += static_cast<std::int32_t>(q);
    }
    (*wsum)[r] = sum;
    (*combined)[r] = in_scale * sw;
  }
}

/// Dequant + bias + optional ReLU for one int32 accumulator.
inline float dequant_acc(std::int32_t acc, std::int32_t corr, float scale,
                         float bias, bool relu) {
  float v = static_cast<float>(acc - corr) * scale + bias;
  if (relu && v < 0.0f) v = 0.0f;
  return v;
}

// ---------------------------------------------------------------------------
// Input quantization: whole rows of fp32 -> u8. The scalar twin uses
// std::lrintf (round-to-nearest-even under the default fp environment),
// which is exactly what _mm256_cvtps_epi32 does, so both variants emit
// identical bytes. Out-of-range conversions produce the sign-independent
// integer-indefinite value in both paths and clamp the same way.

void quantize_row_scalar(const float* in, std::size_t n, const ActQuant& q,
                         std::uint8_t* out) {
  for (std::size_t j = 0; j < n; ++j)
    out[j] = saturate_u7(std::lrintf(in[j] * q.inv_scale) + q.zero_point);
}

#ifdef HSDL_QUANT_AVX2
__attribute__((target("avx2"))) void quantize_row_avx2(const float* in,
                                                       std::size_t n,
                                                       const ActQuant& q,
                                                       std::uint8_t* out) {
  const __m256 inv = _mm256_set1_ps(q.inv_scale);
  const __m256i zp = _mm256_set1_epi32(q.zero_point);
  const __m256i hi = _mm256_set1_epi32(127);
  const __m256i lo = _mm256_setzero_si256();
  // Gathers byte 0 of each dword within each 128-bit lane, then pulls the
  // two lanes' dwords together so the 8 packed bytes sit in the low qword.
  const __m256i shuf = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 1, 1, 1, 1, 1);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256i v =
        _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(in + j), inv));
    v = _mm256_add_epi32(v, zp);
    v = _mm256_max_epi32(_mm256_min_epi32(v, hi), lo);
    v = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(v, shuf), perm);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + j),
                     _mm256_castsi256_si128(v));
  }
  for (; j < n; ++j)
    out[j] = saturate_u7(std::lrintf(in[j] * q.inv_scale) + q.zero_point);
}
#endif

// ---------------------------------------------------------------------------
// int8 conv drivers. Integer accumulation is exact (products <= 127*127,
// reductions far below 2^31), so summation order cannot change the result:
// the scalar and AVX2 drivers are bitwise identical with no fp caveats in
// the accumulation, and the requant epilogues round identically (see the
// input-quantization note above).
//
// Each driver runs the WHOLE conv — tap loop, axpy, epilogue — inside one
// function. The per-function target attribute blocks inlining of helper
// kernels into a differently-targeted caller, and at serving shapes the
// call per tap-row (13k+ calls for the first conv) costs more than the
// arithmetic; folding the nest into the driver removes all of it.
//
// Stride 1 borrows the fp32 direct kernel's plane trick: the int32
// accumulator plane uses the padded row stride pw, so one weight tap
// updates the plane with a single contiguous axpy of oh*pw elements
// instead of oh separate ow-wide rows. Lanes ox in [ow, pw) accumulate
// values the epilogue never reads, and the axpy may read up to kernel-1
// bytes past the padded image, which the pad buffer's slack absorbs.

constexpr std::size_t kQuantPadSlack = 16;  // >= kernel; covers over-read

/// Everything a conv driver needs (Op is private to QuantizedNet, so the
/// run loop flattens the relevant fields into this view).
struct QConvArgs {
  const std::uint8_t* pad;  ///< padded input, in_channels * ph * pw + slack
  const std::int8_t* qweight;
  const std::int32_t* wsum;
  const float* combined_scale;
  const float* bias;
  std::int32_t zp_in = 0;
  float out_inv_scale = 1.0f;
  std::int32_t out_zp = 0;
  bool fuse_relu = false;
  std::size_t in_channels = 0, ph = 0, pw = 0, oh = 0, ow = 0;
  std::size_t out_channels = 0, kernel = 0, stride = 1;
  /// Fused max-pool window (0 or 1 = no pooling). Requantization is
  /// monotone non-decreasing in the accumulator (all scales positive),
  /// so max-then-requant equals the unfused requant-then-byte-max bit
  /// for bit — fusing just skips the intermediate u8 plane and requants
  /// window*window fewer values.
  std::size_t pool = 0;
  std::int32_t* plane = nullptr;  ///< 2x oh*pw (stride 1) or oh*ow scratch
  std::uint8_t* out = nullptr;
  /// Stride-1 precompute from Op (null for strided convs): padded-image
  /// tap offsets and packed pmaddwd weight pairs (see Op::tap_off/wpair).
  const std::size_t* tap_off = nullptr;
  const std::int32_t* wpair = nullptr;
};

void qconv_run_scalar(const QConvArgs& a) {
  const std::size_t k = a.kernel;
  const std::size_t kk = a.in_channels * k * k;
  const std::size_t row_stride = a.stride == 1 ? a.pw : a.ow;
  const std::size_t n = a.oh * row_stride;
  for (std::size_t oc = 0; oc < a.out_channels; ++oc) {
    std::int32_t* plane = a.plane;
    for (std::size_t j = 0; j < n; ++j) plane[j] = 0;
    const std::int8_t* wrow = a.qweight + oc * kk;
    for (std::size_t c = 0; c < a.in_channels; ++c) {
      for (std::size_t ky = 0; ky < k; ++ky) {
        for (std::size_t kx = 0; kx < k; ++kx) {
          const std::int32_t w = wrow[(c * k + ky) * k + kx];
          if (w == 0) continue;
          const std::uint8_t* src = a.pad + (c * a.ph + ky) * a.pw + kx;
          if (a.stride == 1) {
            for (std::size_t j = 0; j < n; ++j)
              plane[j] += w * static_cast<std::int32_t>(src[j]);
          } else {
            for (std::size_t oy = 0; oy < a.oh; ++oy) {
              const std::uint8_t* row = src + oy * a.stride * a.pw;
              std::int32_t* prow = plane + oy * a.ow;
              for (std::size_t ox = 0; ox < a.ow; ++ox)
                prow[ox] += w * static_cast<std::int32_t>(row[ox * a.stride]);
            }
          }
        }
      }
    }
    const std::int32_t corr = a.zp_in * a.wsum[oc];
    const float cs = a.combined_scale[oc];
    const float bv = a.bias[oc];
    if (a.pool > 1) {
      const std::size_t p = a.pool;
      const std::size_t oph = a.oh / p, opw = a.ow / p;
      std::uint8_t* oplane = a.out + oc * oph * opw;
      for (std::size_t py = 0; py < oph; ++py) {
        for (std::size_t px = 0; px < opw; ++px) {
          std::int32_t m = plane[py * p * row_stride + px * p];
          for (std::size_t wy = 0; wy < p; ++wy) {
            const std::int32_t* pr =
                plane + (py * p + wy) * row_stride + px * p;
            for (std::size_t wx = 0; wx < p; ++wx) m = std::max(m, pr[wx]);
          }
          const float v = dequant_acc(m, corr, cs, bv, a.fuse_relu);
          oplane[py * opw + px] =
              saturate_u7(std::lrintf(v * a.out_inv_scale) + a.out_zp);
        }
      }
    } else {
      std::uint8_t* oplane = a.out + oc * a.oh * a.ow;
      for (std::size_t oy = 0; oy < a.oh; ++oy) {
        const std::int32_t* pr = plane + oy * row_stride;
        std::uint8_t* orow = oplane + oy * a.ow;
        for (std::size_t ox = 0; ox < a.ow; ++ox) {
          const float v = dequant_acc(pr[ox], corr, cs, bv, a.fuse_relu);
          orow[ox] =
              saturate_u7(std::lrintf(v * a.out_inv_scale) + a.out_zp);
        }
      }
    }
  }
}

#ifdef HSDL_QUANT_AVX2
/// Requant epilogue for one output channel reading accumulators from
/// `plane` (row stride `row_stride`). Identical arithmetic to the scalar
/// driver's epilogue.
__attribute__((target("avx2"))) void qconv_epilogue_avx2(
    const QConvArgs& a, std::size_t oc, const std::int32_t* plane,
    std::size_t row_stride) {
  const std::int32_t corr = a.zp_in * a.wsum[oc];
  const float cs = a.combined_scale[oc];
  const float bv = a.bias[oc];
  if (a.pool > 1) {
    // Pooled epilogue: the window max runs scalar into a small i32
    // staging row (few cells: the serving convs pool 2x2 down to 36 per
    // channel), then the same 8-lane requant as the unpooled path below
    // sweeps the staged maxes. lrintf and _mm256_cvtps_epi32 both round
    // to nearest even, so the split changes no bytes.
    const std::size_t p = a.pool;
    const std::size_t oph = a.oh / p, opw = a.ow / p;
    const std::size_t m = oph * opw;
    thread_local std::vector<std::int32_t> maxes;
    maxes.resize(m);
    for (std::size_t py = 0; py < oph; ++py) {
      for (std::size_t px = 0; px < opw; ++px) {
        std::int32_t mx = plane[py * p * row_stride + px * p];
        for (std::size_t wy = 0; wy < p; ++wy) {
          const std::int32_t* pr =
              plane + (py * p + wy) * row_stride + px * p;
          for (std::size_t wx = 0; wx < p; ++wx) mx = std::max(mx, pr[wx]);
        }
        maxes[py * opw + px] = mx;
      }
    }
    std::uint8_t* oplane = a.out + oc * m;
    if (m >= 8) {
      const __m256i hi = _mm256_set1_epi32(127);
      const __m256i lo = _mm256_setzero_si256();
      const __m256i zpv = _mm256_set1_epi32(a.out_zp);
      const __m256 invv = _mm256_set1_ps(a.out_inv_scale);
      const __m256i shuf = _mm256_setr_epi8(
          0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
          0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
      const __m256i perm = _mm256_setr_epi32(0, 4, 1, 1, 1, 1, 1, 1);
      const __m256i corrv = _mm256_set1_epi32(corr);
      const __m256 csv = _mm256_set1_ps(cs);
      const __m256 bvv = _mm256_set1_ps(bv);
      const std::size_t nvec = (m + 7) / 8;
      for (std::size_t ti = 0; ti < nvec; ++ti) {
        const std::size_t j = std::min(ti * 8, m - 8);  // overlap tail
        const __m256 d = _mm256_cvtepi32_ps(_mm256_sub_epi32(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(maxes.data() + j)),
            corrv));
        __m256 v = _mm256_add_ps(_mm256_mul_ps(d, csv), bvv);
        if (a.fuse_relu) v = _mm256_max_ps(v, _mm256_setzero_ps());
        __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(v, invv));
        q = _mm256_add_epi32(q, zpv);
        q = _mm256_max_epi32(_mm256_min_epi32(q, hi), lo);
        q = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(q, shuf), perm);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(oplane + j),
                         _mm256_castsi256_si128(q));
      }
    } else {
      for (std::size_t j = 0; j < m; ++j) {
        const float v = dequant_acc(maxes[j], corr, cs, bv, a.fuse_relu);
        oplane[j] =
            saturate_u7(std::lrintf(v * a.out_inv_scale) + a.out_zp);
      }
    }
    return;
  }
  const __m256i hi = _mm256_set1_epi32(127);
  const __m256i lo = _mm256_setzero_si256();
  const __m256i zpv = _mm256_set1_epi32(a.out_zp);
  const __m256 invv = _mm256_set1_ps(a.out_inv_scale);
  const __m256i shuf = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,  //
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 1, 1, 1, 1, 1);
  const __m256i corrv = _mm256_set1_epi32(corr);
  const __m256 csv = _mm256_set1_ps(cs);
  const __m256 bvv = _mm256_set1_ps(bv);
  std::uint8_t* oplane = a.out + oc * a.oh * a.ow;
  for (std::size_t oy = 0; oy < a.oh; ++oy) {
    const std::int32_t* pr = plane + oy * row_stride;
    std::uint8_t* orow = oplane + oy * a.ow;
    std::size_t ox = 0;
    for (; ox + 8 <= a.ow; ox += 8) {
      const __m256 d = _mm256_cvtepi32_ps(_mm256_sub_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pr + ox)),
          corrv));
      __m256 v = _mm256_add_ps(_mm256_mul_ps(d, csv), bvv);
      if (a.fuse_relu) v = _mm256_max_ps(v, _mm256_setzero_ps());
      __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(v, invv));
      q = _mm256_add_epi32(q, zpv);
      q = _mm256_max_epi32(_mm256_min_epi32(q, hi), lo);
      q = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(q, shuf), perm);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(orow + ox),
                       _mm256_castsi256_si128(q));
    }
    if (ox < a.ow && a.ow >= 8) {
      // Remainder: re-run one vector shifted to end at ow; overlapped
      // lanes recompute identical bytes.
      ox = a.ow - 8;
      const __m256 d = _mm256_cvtepi32_ps(_mm256_sub_epi32(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pr + ox)),
          corrv));
      __m256 v = _mm256_add_ps(_mm256_mul_ps(d, csv), bvv);
      if (a.fuse_relu) v = _mm256_max_ps(v, _mm256_setzero_ps());
      __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(v, invv));
      q = _mm256_add_epi32(q, zpv);
      q = _mm256_max_epi32(_mm256_min_epi32(q, hi), lo);
      q = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(q, shuf), perm);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(orow + ox),
                       _mm256_castsi256_si128(q));
      ox = a.ow;
    }
    for (; ox < a.ow; ++ox) {
      const float v = dequant_acc(pr[ox], corr, cs, bv, a.fuse_relu);
      orow[ox] = saturate_u7(std::lrintf(v * a.out_inv_scale) + a.out_zp);
    }
  }
}

__attribute__((target("avx2"))) void qconv_run_avx2(const QConvArgs& a) {
  const std::size_t k = a.kernel;
  const std::size_t kk = a.in_channels * k * k;
  const std::size_t row_stride = a.stride == 1 ? a.pw : a.ow;
  const std::size_t n = a.oh * row_stride;
  // Stride-1 accumulation pairs consecutive taps for pmaddwd (i16
  // products of u7 x s8 inputs: |w0*x0 + w1*x1| <= 2*127*127 < 2^15 per
  // madd half, and the dword sums stay far below 2^31 over <= kk taps),
  // with the partial sums held in registers for a 16-lane output tile.
  // Two output channels run per sweep so each input load is shared.
  // Integer accumulation is exact, so the pairing, the interleaved lane
  // layout inside the tile, and the overlapped remainder tile all yield
  // the same accumulator values as the scalar tap-by-tap loop.
  if (a.stride == 1) {
    const std::size_t pairs = (kk + 1) / 2;
    const std::size_t* tap_off = a.tap_off;
    const std::size_t ntiles = n >= 16 ? (n + 15) / 16 : 0;
    for (std::size_t oc0 = 0; oc0 < a.out_channels; oc0 += 2) {
      const std::size_t nc = std::min<std::size_t>(2, a.out_channels - oc0);
      const std::int32_t* wpair0 = a.wpair + oc0 * pairs;
      const std::int32_t* wpair1 = a.wpair + (oc0 + nc - 1) * pairs;
      for (std::size_t ti = 0; ti < ntiles; ++ti) {
        const std::size_t j = std::min(ti * 16, n - 16);
        __m256i acc0_a = _mm256_setzero_si256();  // lanes 0-3 | 8-11
        __m256i acc0_b = _mm256_setzero_si256();  // lanes 4-7 | 12-15
        __m256i acc1_a = _mm256_setzero_si256();
        __m256i acc1_b = _mm256_setzero_si256();
        for (std::size_t t = 0; t < pairs; ++t) {
          const std::uint8_t* s0 = a.pad + tap_off[2 * t] + j;
          const std::uint8_t* s1 =
              2 * t + 1 < kk ? a.pad + tap_off[2 * t + 1] + j : s0;
          const __m256i va = _mm256_cvtepu8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(s0)));
          const __m256i vb = _mm256_cvtepu8_epi16(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(s1)));
          const __m256i ilo = _mm256_unpacklo_epi16(va, vb);
          const __m256i ihi = _mm256_unpackhi_epi16(va, vb);
          const __m256i wp0 = _mm256_set1_epi32(wpair0[t]);
          acc0_a = _mm256_add_epi32(acc0_a, _mm256_madd_epi16(ilo, wp0));
          acc0_b = _mm256_add_epi32(acc0_b, _mm256_madd_epi16(ihi, wp0));
          if (nc == 2) {
            const __m256i wp1 = _mm256_set1_epi32(wpair1[t]);
            acc1_a = _mm256_add_epi32(acc1_a, _mm256_madd_epi16(ilo, wp1));
            acc1_b = _mm256_add_epi32(acc1_b, _mm256_madd_epi16(ihi, wp1));
          }
        }
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(a.plane + j),
            _mm256_permute2x128_si256(acc0_a, acc0_b, 0x20));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(a.plane + j + 8),
            _mm256_permute2x128_si256(acc0_a, acc0_b, 0x31));
        if (nc == 2) {
          _mm256_storeu_si256(
              reinterpret_cast<__m256i*>(a.plane + n + j),
              _mm256_permute2x128_si256(acc1_a, acc1_b, 0x20));
          _mm256_storeu_si256(
              reinterpret_cast<__m256i*>(a.plane + n + j + 8),
              _mm256_permute2x128_si256(acc1_a, acc1_b, 0x31));
        }
      }
      if (ntiles == 0) {
        for (std::size_t q = 0; q < nc; ++q) {
          const std::int8_t* wrow = a.qweight + (oc0 + q) * kk;
          for (std::size_t j = 0; j < n; ++j) {
            std::int32_t acc = 0;
            for (std::size_t t = 0; t < kk; ++t)
              acc += static_cast<std::int32_t>(wrow[t]) *
                     static_cast<std::int32_t>(a.pad[tap_off[t] + j]);
            a.plane[q * n + j] = acc;
          }
        }
      }
      for (std::size_t q = 0; q < nc; ++q)
        qconv_epilogue_avx2(a, oc0 + q, a.plane + q * n, row_stride);
    }
    return;
  }
  for (std::size_t oc = 0; oc < a.out_channels; ++oc) {
    std::int32_t* plane = a.plane;
    const std::int8_t* wrow = a.qweight + oc * kk;
    for (std::size_t j = 0; j < n; ++j) plane[j] = 0;
    for (std::size_t c = 0; c < a.in_channels; ++c) {
      for (std::size_t ky = 0; ky < k; ++ky) {
        for (std::size_t kx = 0; kx < k; ++kx) {
          const std::int32_t w = wrow[(c * k + ky) * k + kx];
          if (w == 0) continue;
          const std::uint8_t* src = a.pad + (c * a.ph + ky) * a.pw + kx;
          for (std::size_t oy = 0; oy < a.oh; ++oy) {
            const std::uint8_t* row = src + oy * a.stride * a.pw;
            std::int32_t* prow = plane + oy * a.ow;
            for (std::size_t ox = 0; ox < a.ow; ++ox)
              prow[ox] += w * static_cast<std::int32_t>(row[ox * a.stride]);
          }
        }
      }
    }
    qconv_epilogue_avx2(a, oc, plane, row_stride);
  }
}

__attribute__((target("avx2"))) std::int32_t qdot_avx2(
    const std::int8_t* w, const std::uint8_t* in, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256i wv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + j)));
    const __m256i iv = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + j)));
    const __m256i prod = _mm256_mullo_epi16(wv, iv);
    acc = _mm256_add_epi32(
        acc, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod)));
    acc = _mm256_add_epi32(
        acc, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1)));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t a = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                   lanes[5] + lanes[6] + lanes[7];
  for (; j < n; ++j)
    a += static_cast<std::int32_t>(w[j]) * static_cast<std::int32_t>(in[j]);
  return a;
}
#endif

std::int32_t qdot_scalar(const std::int8_t* w, const std::uint8_t* in,
                         std::size_t n) {
  std::int32_t a = 0;
  for (std::size_t j = 0; j < n; ++j)
    a += static_cast<std::int32_t>(w[j]) * static_cast<std::int32_t>(in[j]);
  return a;
}

}  // namespace

std::uint8_t quantize_value(float x, const ActQuant& q) {
  // Round-to-nearest-even via the precomputed reciprocal, matching the
  // vectorized kernels (_mm256_cvtps_epi32) bit for bit.
  return saturate_u7(std::lrintf(x * q.inv_scale) + q.zero_point);
}

float dequantize_value(std::uint8_t v, const ActQuant& q) {
  return static_cast<float>(static_cast<std::int32_t>(v) - q.zero_point) *
         q.scale;
}

ActQuant calibrate_act(float lo, float hi) {
  // Always cover 0 so padding / ReLU zeros land exactly on the grid.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  ActQuant q;
  if (!(hi - lo > 0.0f)) return q;  // constant tensor: scale 1, zp 0
  q.scale = (hi - lo) / 127.0f;
  q.inv_scale = 1.0f / q.scale;
  q.zero_point =
      static_cast<std::int32_t>(std::clamp(std::lround(-lo / q.scale), 0L,
                                           127L));
  return q;
}

QuantizedNet::QuantizedNet(const Sequential& net, const Tensor& calibration) {
  HSDL_CHECK_MSG(net.size() >= 1, "empty net");
  HSDL_CHECK_MSG(calibration.dim() >= 2 && calibration.extent(0) >= 1,
                 "calibration needs a [N, ...] batch");
  const auto& cshape = calibration.shape();
  in_shape_.assign(cshape.begin() + 1, cshape.end());
  in_numel_ = 1;
  for (std::size_t d : in_shape_) in_numel_ *= d;
  max_act_ = in_numel_;

  Tensor x = calibration;
  ActQuant cur = observe(x);
  input_q_ = cur;

  std::size_t i = 0;
  while (i < net.size()) {
    const Layer* l = &net.layer(i);
    if (const auto* conv = dynamic_cast<const Conv2d*>(l)) {
      const Conv2dConfig& c = conv->config();
      Op op;
      op.kind = OpKind::kConv;
      op.in_channels = c.in_channels;
      op.height = x.extent(2);
      op.width = x.extent(3);
      op.out_channels = c.out_channels;
      op.kernel = c.kernel;
      op.stride = c.stride;
      op.padding = c.padding;
      op.in_q = cur;
      quantize_weights(conv->weight().value.data(), c.out_channels,
                       c.in_channels * c.kernel * c.kernel, cur.scale,
                       &op.qweight, &op.wsum, &op.combined_scale);
      op.bias.assign(conv->bias().value.data(),
                     conv->bias().value.data() + c.out_channels);
      if (op.stride == 1) {
        const std::size_t k = op.kernel;
        const std::size_t kk = op.in_channels * k * k;
        const std::size_t ph = op.height + 2 * op.padding;
        const std::size_t pw = op.width + 2 * op.padding;
        op.tap_off.resize(kk);
        for (std::size_t ic = 0; ic < op.in_channels; ++ic)
          for (std::size_t ky = 0; ky < k; ++ky)
            for (std::size_t kx = 0; kx < k; ++kx)
              op.tap_off[(ic * k + ky) * k + kx] = (ic * ph + ky) * pw + kx;
        const std::size_t pairs = (kk + 1) / 2;
        op.wpair.resize(op.out_channels * pairs);
        for (std::size_t oc = 0; oc < op.out_channels; ++oc) {
          const std::int8_t* wrow = op.qweight.data() + oc * kk;
          for (std::size_t t = 0; t < pairs; ++t) {
            const std::int32_t w0 = wrow[2 * t];
            const std::int32_t w1 = 2 * t + 1 < kk ? wrow[2 * t + 1] : 0;
            op.wpair[oc * pairs + t] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(static_cast<std::uint16_t>(w0)) |
                (static_cast<std::uint32_t>(static_cast<std::uint16_t>(w1))
                 << 16));
          }
        }
      }
      op.fuse_relu =
          i + 1 < net.size() &&
          dynamic_cast<const Relu*>(&net.layer(i + 1)) != nullptr;
      x = op.fuse_relu ? conv->infer_relu(x) : conv->infer(x);
      i += op.fuse_relu ? 2 : 1;
      cur = observe(x);
      op.out_q = cur;
      max_pad_ = std::max(
          max_pad_, op.in_channels * (op.height + 2 * op.padding) *
                        (op.width + 2 * op.padding));
      max_act_ = std::max(max_act_, x.numel() / x.extent(0));
      ops_.push_back(std::move(op));
    } else if (const auto* pool = dynamic_cast<const MaxPool2d*>(l)) {
      Op op;
      op.kind = OpKind::kPool;
      op.in_channels = x.extent(1);
      op.height = x.extent(2);
      op.width = x.extent(3);
      op.window = pool->window();
      op.in_q = op.out_q = cur;  // max() commutes with the monotone quant map
      x = pool->infer(x);
      ++i;
      ops_.push_back(std::move(op));
    } else if (const auto* lin = dynamic_cast<const Linear*>(l)) {
      Op op;
      op.kind = OpKind::kLinear;
      op.in_features = lin->in_features();
      op.out_features = lin->out_features();
      op.in_q = cur;
      quantize_weights(lin->weight().value.data(), op.out_features,
                       op.in_features, cur.scale, &op.qweight, &op.wsum,
                       &op.combined_scale);
      op.bias.assign(lin->bias().value.data(),
                     lin->bias().value.data() + op.out_features);
      op.fuse_relu =
          i + 1 < net.size() &&
          dynamic_cast<const Relu*>(&net.layer(i + 1)) != nullptr;
      x = op.fuse_relu ? lin->infer_relu(x) : lin->infer(x);
      i += op.fuse_relu ? 2 : 1;
      cur = observe(x);
      op.out_q = cur;
      max_act_ = std::max(max_act_, op.out_features);
      ops_.push_back(std::move(op));
    } else if (dynamic_cast<const Flatten*>(l) != nullptr) {
      x = l->infer(x);  // pure layout change: the u8 buffer is already flat
      ++i;
    } else if (dynamic_cast<const Dropout*>(l) != nullptr) {
      ++i;  // identity at inference
    } else {
      HSDL_CHECK_MSG(false, "cannot quantize layer: " << l->name());
    }
  }
  HSDL_CHECK_MSG(!ops_.empty() && ops_.back().kind == OpKind::kLinear,
                 "quantized net must end in a Linear classifier");
  ops_.back().fp32_out = true;
  classes_ = ops_.back().out_features;
}

std::size_t QuantizedNet::num_quantized_layers() const {
  std::size_t n = 0;
  for (const Op& op : ops_)
    if (op.kind != OpKind::kPool) ++n;
  return n;
}

void QuantizedNet::run_sample(const float* in, float* probs_out) const {
  thread_local std::vector<std::uint8_t> bufa, bufb, pad;
  thread_local std::vector<std::int32_t> plane;
  thread_local std::vector<float> logits;
  bufa.resize(max_act_);
  bufb.resize(max_act_);
  pad.resize(max_pad_ + kQuantPadSlack);
  logits.resize(classes_);

  const bool avx2 = cpu::has_avx2_fma();
  (void)avx2;

  std::uint8_t* curb = bufa.data();
  std::uint8_t* nextb = bufb.data();
#ifdef HSDL_QUANT_AVX2
  if (avx2)
    quantize_row_avx2(in, in_numel_, input_q_, curb);
  else
#endif
    quantize_row_scalar(in, in_numel_, input_q_, curb);

  for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
    const Op& op = ops_[oi];
    switch (op.kind) {
      case OpKind::kConv: {
        const std::size_t ph = op.height + 2 * op.padding;
        const std::size_t pw = op.width + 2 * op.padding;
        const std::size_t oh =
            (op.height + 2 * op.padding - op.kernel) / op.stride + 1;
        const std::size_t ow =
            (op.width + 2 * op.padding - op.kernel) / op.stride + 1;
        const std::uint8_t zp = static_cast<std::uint8_t>(op.in_q.zero_point);
        // Padded copy: borders hold the zero point, which dequantizes to
        // exactly 0 — no bounds checks in the kernels. The slack bytes
        // also hold zp; the plane path's tail over-read touches them, but
        // only into accumulator lanes the epilogue never reads. Every
        // element is written per call (borders + slack explicitly,
        // interior copied), so the reused scratch never needs a full fill.
        const std::size_t p = op.padding;
        for (std::size_t c = 0; c < op.in_channels; ++c) {
          std::uint8_t* img = pad.data() + c * ph * pw;
          std::fill(img, img + p * pw, zp);
          for (std::size_t y = 0; y < op.height; ++y) {
            std::uint8_t* dst = img + (y + p) * pw;
            std::fill(dst, dst + p, zp);
            std::copy_n(curb + (c * op.height + y) * op.width, op.width,
                        dst + p);
            std::fill(dst + p + op.width, dst + pw, zp);
          }
          std::fill(img + (p + op.height) * pw, img + ph * pw, zp);
        }
        std::uint8_t* slack = pad.data() + op.in_channels * ph * pw;
        std::fill(slack, slack + kQuantPadSlack, zp);
        // 2x: the AVX2 stride-1 path accumulates two output channels per
        // sweep, each into its own plane segment.
        plane.resize(2 * oh * (op.stride == 1 ? pw : ow));
        // Fold an immediately following max-pool into the epilogue when
        // its geometry matches the conv output (see QConvArgs::pool).
        std::size_t fused_pool = 0;
        if (oi + 1 < ops_.size()) {
          const Op& next = ops_[oi + 1];
          if (next.kind == OpKind::kPool && next.window > 1 &&
              next.in_channels == op.out_channels && next.height == oh &&
              next.width == ow) {
            fused_pool = next.window;
          }
        }
        QConvArgs args;
        args.pad = pad.data();
        args.qweight = op.qweight.data();
        args.wsum = op.wsum.data();
        args.combined_scale = op.combined_scale.data();
        args.bias = op.bias.data();
        args.zp_in = op.in_q.zero_point;
        args.out_inv_scale = op.out_q.inv_scale;
        args.out_zp = op.out_q.zero_point;
        args.fuse_relu = op.fuse_relu;
        args.in_channels = op.in_channels;
        args.ph = ph;
        args.pw = pw;
        args.oh = oh;
        args.ow = ow;
        args.out_channels = op.out_channels;
        args.kernel = op.kernel;
        args.stride = op.stride;
        args.pool = fused_pool;
        args.plane = plane.data();
        args.out = nextb;
        args.tap_off = op.tap_off.data();
        args.wpair = op.wpair.data();
#ifdef HSDL_QUANT_AVX2
        if (avx2)
          qconv_run_avx2(args);
        else
#endif
          qconv_run_scalar(args);
        if (fused_pool > 0) ++oi;  // the pool ran inside the epilogue
        std::swap(curb, nextb);
        break;
      }
      case OpKind::kPool: {
        const std::size_t oh = op.height / op.window;
        const std::size_t ow = op.width / op.window;
        for (std::size_t c = 0; c < op.in_channels; ++c) {
          const std::uint8_t* iplane = curb + c * op.height * op.width;
          std::uint8_t* oplane = nextb + c * oh * ow;
          for (std::size_t oy = 0; oy < oh; ++oy) {
            for (std::size_t ox = 0; ox < ow; ++ox) {
              std::uint8_t m = 0;
              for (std::size_t wy = 0; wy < op.window; ++wy) {
                const std::uint8_t* row =
                    iplane + (oy * op.window + wy) * op.width + ox * op.window;
                for (std::size_t wx = 0; wx < op.window; ++wx)
                  m = std::max(m, row[wx]);
              }
              oplane[oy * ow + ox] = m;
            }
          }
        }
        std::swap(curb, nextb);
        break;
      }
      case OpKind::kLinear: {
        for (std::size_t o = 0; o < op.out_features; ++o) {
          const std::int8_t* wrow = op.qweight.data() + o * op.in_features;
          std::int32_t a;
#ifdef HSDL_QUANT_AVX2
          if (avx2)
            a = qdot_avx2(wrow, curb, op.in_features);
          else
#endif
            a = qdot_scalar(wrow, curb, op.in_features);
          const float v =
              dequant_acc(a, op.in_q.zero_point * op.wsum[o],
                          op.combined_scale[o], op.bias[o], op.fuse_relu);
          if (op.fp32_out)
            logits[o] = v;
          else
            nextb[o] = quantize_value(v, op.out_q);
        }
        if (!op.fp32_out) std::swap(curb, nextb);
        break;
      }
    }
  }
  softmax_row(logits.data(), classes_, probs_out);
}

Tensor QuantizedNet::probabilities(const Tensor& input) const {
  HSDL_CHECK_MSG(input.dim() >= 2 && input.numel() ==
                     input.extent(0) * in_numel_,
                 "input shape mismatch vs calibration: " << input.shape_str());
  const std::size_t n = input.extent(0);
  Tensor out({n, classes_});
  HSDL_TRACE_SPAN("quant.infer");
  hsdl::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      run_sample(input.data() + i * in_numel_, out.data() + i * classes_);
  });
  return out;
}

Tensor QuantizedNet::probabilities(const Tensor& input,
                                   WorkspaceArena& ws) const {
  HSDL_CHECK_MSG(input.dim() >= 2 && input.numel() ==
                     input.extent(0) * in_numel_,
                 "input shape mismatch vs calibration: " << input.shape_str());
  const std::size_t n = input.extent(0);
  Tensor out = ws.take({n, classes_});
  HSDL_TRACE_SPAN("quant.infer");
  hsdl::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      run_sample(input.data() + i * in_numel_, out.data() + i * classes_);
  });
  return out;
}

}  // namespace hsdl::nn

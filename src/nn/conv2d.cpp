#include "nn/conv2d.hpp"

#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/refmode.hpp"
#include "common/trace.hpp"
#include "nn/conv_direct.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "nn/workspace.hpp"

namespace hsdl::nn {
namespace {

Tensor make_conv_weight(const Conv2dConfig& c, Rng& rng) {
  Tensor w({c.out_channels, c.in_channels * c.kernel * c.kernel});
  he_normal_init(w, c.in_channels * c.kernel * c.kernel, rng);
  return w;
}

/// Multiply-add FLOP count of one batched conv pass (the im2col GEMM).
/// Observability only; see gemm.cpp for the determinism argument.
void count_conv_flops(std::size_t n, std::size_t out_channels,
                      std::size_t kk, std::size_t ocols,
                      std::size_t passes) {
  if (!metrics::enabled()) return;
  static metrics::Counter& flops = metrics::counter("conv2d.flops");
  static metrics::Counter& samples = metrics::counter("conv2d.samples");
  flops.add(passes * 2 * static_cast<std::uint64_t>(n) * out_channels * kk *
            ocols);
  samples.add(n);
}

}  // namespace

void im2col(const float* in, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* out) {
  const std::size_t oh = (height + 2 * padding - kernel) / stride + 1;
  const std::size_t ow = (width + 2 * padding - kernel) / stride + 1;
  const std::size_t ocols = oh * ow;
  for (std::size_t c = 0; c < channels; ++c) {
    const float* img = in + c * height * width;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        float* orow = out + ((c * kernel + ky) * kernel + kx) * ocols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long long iy = static_cast<long long>(oy * stride + ky) -
                               static_cast<long long>(padding);
          if (iy < 0 || iy >= static_cast<long long>(height)) {
            for (std::size_t ox = 0; ox < ow; ++ox) orow[oy * ow + ox] = 0.0f;
            continue;
          }
          const float* irow = img + static_cast<std::size_t>(iy) * width;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * stride + kx) -
                                 static_cast<long long>(padding);
            orow[oy * ow + ox] =
                (ix < 0 || ix >= static_cast<long long>(width))
                    ? 0.0f
                    : irow[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kernel, std::size_t stride,
            std::size_t padding, float* out) {
  const std::size_t oh = (height + 2 * padding - kernel) / stride + 1;
  const std::size_t ow = (width + 2 * padding - kernel) / stride + 1;
  const std::size_t ocols = oh * ow;
  for (std::size_t c = 0; c < channels; ++c) {
    float* img = out + c * height * width;
    for (std::size_t ky = 0; ky < kernel; ++ky) {
      for (std::size_t kx = 0; kx < kernel; ++kx) {
        const float* crow = cols + ((c * kernel + ky) * kernel + kx) * ocols;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long long iy = static_cast<long long>(oy * stride + ky) -
                               static_cast<long long>(padding);
          if (iy < 0 || iy >= static_cast<long long>(height)) continue;
          float* irow = img + static_cast<std::size_t>(iy) * width;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * stride + kx) -
                                 static_cast<long long>(padding);
            if (ix < 0 || ix >= static_cast<long long>(width)) continue;
            irow[static_cast<std::size_t>(ix)] += crow[oy * ow + ox];
          }
        }
      }
    }
  }
}

Conv2d::Conv2d(const Conv2dConfig& config, Rng& rng)
    : config_(config),
      weight_("weight", make_conv_weight(config, rng)),
      bias_("bias", Tensor({config.out_channels})) {
  HSDL_CHECK(config.in_channels > 0 && config.out_channels > 0);
  HSDL_CHECK(config.kernel > 0 && config.stride > 0);
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "conv" << config_.kernel << "x" << config_.kernel << "("
     << config_.in_channels << "->" << config_.out_channels << ")";
  return os.str();
}

std::size_t Conv2d::out_extent(std::size_t in_extent) const {
  HSDL_CHECK_MSG(in_extent + 2 * config_.padding >= config_.kernel,
                 "input smaller than kernel");
  return (in_extent + 2 * config_.padding - config_.kernel) / config_.stride +
         1;
}

std::vector<std::size_t> Conv2d::output_shape(
    const std::vector<std::size_t>& in) const {
  HSDL_CHECK(in.size() == 4 && in[1] == config_.in_channels);
  return {in[0], config_.out_channels, out_extent(in[2]), out_extent(in[3])};
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  const auto& shp = input.shape();
  HSDL_CHECK_MSG(shp.size() == 4 && shp[1] == config_.in_channels,
                 "conv2d expects [N," << config_.in_channels
                                      << ",H,W], got " << input.shape_str());
  input_ = input;
  const std::size_t n = shp[0], h = shp[2], w = shp[3];
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  const std::size_t kk =
      config_.in_channels * config_.kernel * config_.kernel;
  const std::size_t ocols = oh * ow;

  HSDL_TRACE_SPAN("conv2d.forward");
  count_conv_flops(n, config_.out_channels, kk, ocols, /*passes=*/1);
  cols_ = Tensor({n, kk, ocols});
  Tensor out({n, config_.out_channels, oh, ow});
  // Samples are independent: each writes only its own cols_/out slices.
  hsdl::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      float* col = cols_.data() + i * kk * ocols;
      im2col(input.data() + i * config_.in_channels * h * w,
             config_.in_channels, h, w, config_.kernel, config_.stride,
             config_.padding, col);
      // out_i = W [out_c x kk] * col [kk x ocols]
      float* out_i = out.data() + i * config_.out_channels * ocols;
      matmul(config_.out_channels, ocols, kk, weight_.value.data(), col,
             out_i);
      for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
        const float bv = bias_.value[oc];
        float* orow = out_i + oc * ocols;
        for (std::size_t j = 0; j < ocols; ++j) orow[j] += bv;
      }
    }
  });
  return out;
}

Tensor Conv2d::direct_infer(const Tensor& input, WorkspaceArena* ws,
                            bool fuse_relu) const {
  const auto& shp = input.shape();
  HSDL_CHECK_MSG(shp.size() == 4 && shp[1] == config_.in_channels,
                 "conv2d expects [N," << config_.in_channels
                                      << ",H,W], got " << input.shape_str());
  const std::size_t n = shp[0], h = shp[2], w = shp[3];
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  const std::size_t kk =
      config_.in_channels * config_.kernel * config_.kernel;

  HSDL_TRACE_SPAN("conv2d.infer");
  // Same multiply-add count as the im2col GEMM (modulo skipped zeros);
  // keep the counter comparable across paths.
  count_conv_flops(n, config_.out_channels, kk, oh * ow, /*passes=*/1);
  const ConvDirectShape ds{config_.in_channels, h,
                           w,                   config_.out_channels,
                           config_.kernel,      config_.stride,
                           config_.padding};
  const std::vector<std::size_t> out_shape{n, config_.out_channels, oh, ow};
  Tensor out = ws != nullptr ? ws->take(out_shape) : Tensor(out_shape);
  hsdl::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      conv2d_direct(input.data() + i * config_.in_channels * h * w,
                    weight_.value.data(), bias_.value.data(), ds, fuse_relu,
                    out.data() + i * config_.out_channels * oh * ow);
    }
  });
  return out;
}

Tensor Conv2d::infer_relu(const Tensor& input) const {
  return direct_infer(input, nullptr, /*fuse_relu=*/true);
}

Tensor Conv2d::infer_relu(const Tensor& input, WorkspaceArena& ws) const {
  return direct_infer(input, &ws, /*fuse_relu=*/true);
}

Tensor Conv2d::infer(const Tensor& input) const {
  if (!runtime::reference_mode())
    return direct_infer(input, nullptr, /*fuse_relu=*/false);
  const auto& shp = input.shape();
  HSDL_CHECK_MSG(shp.size() == 4 && shp[1] == config_.in_channels,
                 "conv2d expects [N," << config_.in_channels
                                      << ",H,W], got " << input.shape_str());
  const std::size_t n = shp[0], h = shp[2], w = shp[3];
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  const std::size_t kk =
      config_.in_channels * config_.kernel * config_.kernel;
  const std::size_t ocols = oh * ow;

  HSDL_TRACE_SPAN("conv2d.infer");
  count_conv_flops(n, config_.out_channels, kk, ocols, /*passes=*/1);
  Tensor out({n, config_.out_channels, oh, ow});
  hsdl::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    std::vector<float> col(kk * ocols);  // per-chunk im2col scratch
    for (std::size_t i = b; i < e; ++i) {
      im2col(input.data() + i * config_.in_channels * h * w,
             config_.in_channels, h, w, config_.kernel, config_.stride,
             config_.padding, col.data());
      float* out_i = out.data() + i * config_.out_channels * ocols;
      matmul(config_.out_channels, ocols, kk, weight_.value.data(),
             col.data(), out_i);
      for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
        const float bv = bias_.value[oc];
        float* orow = out_i + oc * ocols;
        for (std::size_t j = 0; j < ocols; ++j) orow[j] += bv;
      }
    }
  });
  return out;
}

Tensor Conv2d::infer(const Tensor& input, WorkspaceArena& ws) const {
  if (!runtime::reference_mode())
    return direct_infer(input, &ws, /*fuse_relu=*/false);
  const auto& shp = input.shape();
  HSDL_CHECK_MSG(shp.size() == 4 && shp[1] == config_.in_channels,
                 "conv2d expects [N," << config_.in_channels
                                      << ",H,W], got " << input.shape_str());
  const std::size_t n = shp[0], h = shp[2], w = shp[3];
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  const std::size_t kk =
      config_.in_channels * config_.kernel * config_.kernel;
  const std::size_t ocols = oh * ow;

  HSDL_TRACE_SPAN("conv2d.infer");
  count_conv_flops(n, config_.out_channels, kk, ocols, /*passes=*/1);
  Tensor out = ws.take({n, config_.out_channels, oh, ow});
  // One im2col slab for the whole batch (disjoint per-sample slices) so
  // the parallel workers never touch the arena; same arithmetic as the
  // allocating path, so outputs are bitwise identical.
  ScratchScope scope(ws);
  const std::span<float> cols = ws.scratch(n * kk * ocols);
  hsdl::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      float* col = cols.data() + i * kk * ocols;
      im2col(input.data() + i * config_.in_channels * h * w,
             config_.in_channels, h, w, config_.kernel, config_.stride,
             config_.padding, col);
      float* out_i = out.data() + i * config_.out_channels * ocols;
      matmul(config_.out_channels, ocols, kk, weight_.value.data(), col,
             out_i);
      for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
        const float bv = bias_.value[oc];
        float* orow = out_i + oc * ocols;
        for (std::size_t j = 0; j < ocols; ++j) orow[j] += bv;
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const auto& in_shape = input_.shape();
  HSDL_CHECK_MSG(!input_.empty(), "backward before forward");
  const std::size_t n = in_shape[0], h = in_shape[2], w = in_shape[3];
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  const std::size_t ocols = oh * ow;
  const std::size_t kk =
      config_.in_channels * config_.kernel * config_.kernel;
  HSDL_CHECK(grad_output.shape() ==
             std::vector<std::size_t>({n, config_.out_channels, oh, ow}));

  HSDL_TRACE_SPAN("conv2d.backward");
  // Backward runs two GEMMs per sample (dW and dcol).
  count_conv_flops(n, config_.out_channels, kk, ocols, /*passes=*/2);
  Tensor grad_in({n, config_.in_channels, h, w});
  // Per-sample weight/bias gradient partials: samples run in parallel,
  // then the partials are reduced in fixed sample order on this thread —
  // the reduction order never depends on the thread count, keeping
  // results bitwise deterministic.
  const std::size_t wsz = config_.out_channels * kk;
  std::vector<float> dw_partial(n * wsz);
  std::vector<float> db_partial(n * config_.out_channels);
  hsdl::parallel_for(0, n, 1, [&](std::size_t b, std::size_t e) {
    std::vector<float> dcol(kk * ocols);  // per-chunk scratch
    for (std::size_t i = b; i < e; ++i) {
      const float* gout =
          grad_output.data() + i * config_.out_channels * ocols;
      const float* col = cols_.data() + i * kk * ocols;
      // dW_i = gout [out_c x ocols] * col^T [ocols x kk]
      gemm(false, true, config_.out_channels, kk, ocols, 1.0f, gout, ocols,
           col, ocols, 0.0f, dw_partial.data() + i * wsz, kk);
      // db_i = row sums of gout
      for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
        float acc = 0.0f;
        const float* grow = gout + oc * ocols;
        for (std::size_t j = 0; j < ocols; ++j) acc += grow[j];
        db_partial[i * config_.out_channels + oc] = acc;
      }
      // dcol = W^T [kk x out_c] * gout [out_c x ocols]
      gemm(true, false, kk, ocols, config_.out_channels, 1.0f,
           weight_.value.data(), kk, gout, ocols, 0.0f, dcol.data(), ocols);
      col2im(dcol.data(), config_.in_channels, h, w, config_.kernel,
             config_.stride, config_.padding,
             grad_in.data() + i * config_.in_channels * h * w);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    const float* dw = dw_partial.data() + i * wsz;
    for (std::size_t j = 0; j < wsz; ++j) weight_.grad[j] += dw[j];
    const float* db = db_partial.data() + i * config_.out_channels;
    for (std::size_t oc = 0; oc < config_.out_channels; ++oc)
      bias_.grad[oc] += db[oc];
  }
  return grad_in;
}

}  // namespace hsdl::nn

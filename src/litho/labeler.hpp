// Hotspot labeling by printed-image defect analysis.
//
// A clip is a hotspot when its printed image exhibits a lithographic defect
// anywhere in the process window. Three defect mechanisms are checked —
// the classic hotspot taxonomy:
//   * necking / opens : printed CD across a wire falls below neck_tol at
//     the under-dose corner (measured along shape centerlines);
//   * bridging        : printed resist connects two distinct mask shapes
//     across a space at the over-dose corner (measured by outward walks
//     from shape edges);
//   * line-end pullback (EPE): the printed contour retreats from a line
//     end by more than epe_tol at nominal conditions.
#pragma once

#include <string>
#include <vector>

#include "layout/dataset.hpp"
#include "litho/simulator.hpp"

namespace hsdl::litho {

enum class DefectType { kNecking, kBridging, kLineEndPullback };

const char* to_string(DefectType type);

struct Defect {
  DefectType type;
  geom::Point location;  ///< nm, in clip coordinates
  double severity_nm;    ///< CD deficit / intrusion depth / pullback length
};

struct DefectReport {
  std::vector<Defect> defects;
  bool is_hotspot() const { return !defects.empty(); }
};

class HotspotLabeler {
 public:
  explicit HotspotLabeler(const LithoConfig& config = {});

  /// Full defect analysis of one clip at the base (nominal) corner set.
  DefectReport analyze(const layout::Clip& clip) const;

  /// Margin-aware decision: kHotspot when defective even at the *mild*
  /// corner variant, kNonHotspot when clean even at the *harsh* variant,
  /// kUnknown for the marginal band in between (see LithoConfig).
  layout::HotspotLabel label(const layout::Clip& clip) const;

  /// Labels a batch in place (marginal clips become kUnknown).
  void label_all(std::vector<layout::LabeledClip>& clips) const;

  const LithoSimulator& simulator() const { return sim_; }

 private:
  DefectReport analyze_with(const LithoSimulator& sim,
                            const layout::Clip& clip) const;

  LithoSimulator sim_;
  LithoSimulator mild_sim_;
  LithoSimulator harsh_sim_;
};

}  // namespace hsdl::litho

// Lithography simulator: clip -> printed resist images at process corners.
#pragma once

#include "layout/clip.hpp"
#include "layout/raster.hpp"
#include "litho/config.hpp"

namespace hsdl::litho {

/// Printed resist images at the three process-window corners.
struct PrintedStack {
  layout::MaskImage nominal;
  layout::MaskImage under;  ///< under-dose + defocus (risk: opens/necks)
  layout::MaskImage over;   ///< over-dose + defocus (risk: bridges)
};

class LithoSimulator {
 public:
  explicit LithoSimulator(const LithoConfig& config = {});

  const LithoConfig& config() const { return config_; }

  /// Rasterizes the clip at the simulation grid.
  layout::MaskImage rasterize(const layout::Clip& clip) const;

  /// Aerial image at a given corner (dose applied by the resist step, so
  /// the aerial image itself only depends on defocus).
  layout::MaskImage aerial(const layout::MaskImage& mask,
                           const ProcessCorner& corner) const;

  /// Constant-threshold resist: printed = (aerial * dose >= threshold).
  layout::MaskImage develop(const layout::MaskImage& aerial_img,
                            const ProcessCorner& corner) const;

  /// Full pipeline for all three corners.
  PrintedStack print(const layout::Clip& clip) const;

 private:
  LithoConfig config_;
};

}  // namespace hsdl::litho

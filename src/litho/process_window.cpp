#include "litho/process_window.hpp"

#include "common/check.hpp"
#include "litho/labeler.hpp"

namespace hsdl::litho {

ProcessWindowResult measure_process_window(
    const layout::Clip& clip, const ProcessWindowConfig& config) {
  HSDL_CHECK(config.dose_steps >= 1 && config.blur_steps >= 1);
  HSDL_CHECK(config.dose_min <= config.dose_max);
  HSDL_CHECK(config.blur_min <= config.blur_max);

  ProcessWindowResult result;
  for (std::size_t di = 0; di < config.dose_steps; ++di) {
    const double dose =
        config.dose_steps == 1
            ? config.dose_min
            : config.dose_min + (config.dose_max - config.dose_min) *
                                    static_cast<double>(di) /
                                    static_cast<double>(config.dose_steps - 1);
    for (std::size_t bi = 0; bi < config.blur_steps; ++bi) {
      const double blur =
          config.blur_steps == 1
              ? config.blur_min
              : config.blur_min +
                    (config.blur_max - config.blur_min) *
                        static_cast<double>(bi) /
                        static_cast<double>(config.blur_steps - 1);
      // A single-condition "window": all three corners collapse onto the
      // sampled (dose, blur) point; the defect analysis then reports the
      // defects present exactly there.
      LithoConfig point = config.litho;
      point.nominal = {dose, blur};
      point.under = {dose, blur};
      point.over = {dose, blur};
      HotspotLabeler labeler(point);
      ++result.conditions;
      if (!labeler.analyze(clip).is_hotspot()) ++result.clean;
    }
  }
  return result;
}

}  // namespace hsdl::litho

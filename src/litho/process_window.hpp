// Process-window analysis.
//
// The paper defines hotspots as "layout patterns with a smaller process
// window" (Section 2). This module measures that window directly: the
// fraction of a (dose x defocus) grid at which a clip prints without
// defects. The margin-aware labeler is a 3-corner approximation of this
// measurement; here the full map is available for analysis and for
// validating the labeler itself.
#pragma once

#include <vector>

#include "layout/clip.hpp"
#include "litho/config.hpp"

namespace hsdl::litho {

struct ProcessWindowConfig {
  LithoConfig litho;
  double dose_min = 0.90;
  double dose_max = 1.10;
  std::size_t dose_steps = 5;
  double blur_min = 1.0;
  double blur_max = 1.12;
  std::size_t blur_steps = 3;
};

struct ProcessWindowResult {
  std::size_t conditions = 0;  ///< grid points evaluated
  std::size_t clean = 0;       ///< grid points with zero defects

  /// Process-window area as the clean fraction of the sampled grid.
  double window_fraction() const {
    return conditions == 0
               ? 0.0
               : static_cast<double>(clean) /
                     static_cast<double>(conditions);
  }
};

/// Evaluates defect-freedom across the (dose, defocus) grid.
ProcessWindowResult measure_process_window(const layout::Clip& clip,
                                           const ProcessWindowConfig& config);

}  // namespace hsdl::litho

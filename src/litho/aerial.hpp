// Aerial image computation: Gaussian PSF convolution of a mask raster.
#pragma once

#include <vector>

#include "layout/raster.hpp"
#include "litho/config.hpp"

namespace hsdl::litho {

/// Truncated (±3.5 sigma), normalized 1-D Gaussian kernel sampled at the
/// pixel pitch. sigma_px must be > 0.
std::vector<float> gaussian_kernel_1d(double sigma_px);

/// Separable convolution with zero boundary (empty field outside the clip).
/// The kernel is applied along x then y.
layout::MaskImage convolve_separable(const layout::MaskImage& in,
                                     const std::vector<float>& kernel);

/// Aerial image of a mask raster under a Gaussian PSF of `sigma_nm`.
/// Intensity is normalized so that a large open feature tends to 1.0.
layout::MaskImage aerial_image(const layout::MaskImage& mask, double sigma_nm);

/// Aerial image under a sum-of-Gaussians kernel (SOCS-style): the weighted
/// sum of Gaussian convolutions at sigma_nm * term.sigma_scale, weights
/// normalized to sum 1. An empty mixture means the single-Gaussian model.
layout::MaskImage aerial_image_mixture(
    const layout::MaskImage& mask, double sigma_nm,
    const std::vector<OpticalKernelTerm>& mixture);

}  // namespace hsdl::litho

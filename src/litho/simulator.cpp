#include "litho/simulator.hpp"

#include "common/check.hpp"
#include "litho/aerial.hpp"

namespace hsdl::litho {

LithoSimulator::LithoSimulator(const LithoConfig& config) : config_(config) {
  HSDL_CHECK(config.grid_nm > 0.0);
  HSDL_CHECK(config.sigma_nm > 0.0);
  HSDL_CHECK(config.threshold > 0.0 && config.threshold < 1.0);
}

layout::MaskImage LithoSimulator::rasterize(const layout::Clip& clip) const {
  return layout::rasterize(clip, config_.grid_nm);
}

layout::MaskImage LithoSimulator::aerial(const layout::MaskImage& mask,
                                         const ProcessCorner& corner) const {
  return aerial_image_mixture(mask, config_.sigma_nm * corner.defocus_blur,
                              config_.kernel_mixture);
}

layout::MaskImage LithoSimulator::develop(const layout::MaskImage& aerial_img,
                                          const ProcessCorner& corner) const {
  layout::MaskImage printed(aerial_img.width(), aerial_img.height(),
                            aerial_img.nm_per_px());
  const double th = config_.threshold;
  for (std::size_t i = 0; i < aerial_img.size(); ++i)
    printed.data()[i] =
        (static_cast<double>(aerial_img.data()[i]) * corner.dose >= th)
            ? 1.0f
            : 0.0f;
  return printed;
}

PrintedStack LithoSimulator::print(const layout::Clip& clip) const {
  const layout::MaskImage mask = rasterize(clip);
  // Nominal and defocused corners have different PSFs; under/over share the
  // defocused aerial image and differ only in dose.
  const layout::MaskImage a_nom = aerial(mask, config_.nominal);
  const layout::MaskImage a_under = aerial(mask, config_.under);
  const bool same_blur =
      config_.over.defocus_blur == config_.under.defocus_blur;
  const layout::MaskImage a_over =
      same_blur ? a_under : aerial(mask, config_.over);
  PrintedStack stack{develop(a_nom, config_.nominal),
                     develop(a_under, config_.under),
                     develop(a_over, config_.over)};
  return stack;
}

}  // namespace hsdl::litho

#include "litho/aerial.hpp"

#include <cmath>

#include "common/check.hpp"

namespace hsdl::litho {

std::vector<float> gaussian_kernel_1d(double sigma_px) {
  HSDL_CHECK(sigma_px > 0.0);
  const int radius = std::max(1, static_cast<int>(std::ceil(3.5 * sigma_px)));
  std::vector<float> k(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    double v = std::exp(-0.5 * (i / sigma_px) * (i / sigma_px));
    k[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (float& v : k) v = static_cast<float>(v / sum);
  return k;
}

layout::MaskImage convolve_separable(const layout::MaskImage& in,
                                     const std::vector<float>& kernel) {
  HSDL_CHECK(!kernel.empty() && kernel.size() % 2 == 1);
  const int radius = static_cast<int>(kernel.size() / 2);
  const int w = static_cast<int>(in.width());
  const int h = static_cast<int>(in.height());

  layout::MaskImage tmp(in.width(), in.height(), in.nm_per_px());
  // Horizontal pass.
  for (int y = 0; y < h; ++y) {
    const float* src = in.row(static_cast<std::size_t>(y));
    float* dst = tmp.row(static_cast<std::size_t>(y));
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      const int lo = std::max(-radius, -x);
      const int hi = std::min(radius, w - 1 - x);
      for (int t = lo; t <= hi; ++t)
        acc += src[x + t] * kernel[static_cast<std::size_t>(t + radius)];
      dst[x] = acc;
    }
  }
  // Vertical pass (column walk over rows for cache friendliness).
  layout::MaskImage out(in.width(), in.height(), in.nm_per_px());
  for (int y = 0; y < h; ++y) {
    float* dst = out.row(static_cast<std::size_t>(y));
    const int lo = std::max(-radius, -y);
    const int hi = std::min(radius, h - 1 - y);
    for (int x = 0; x < w; ++x) dst[x] = 0.0f;
    for (int t = lo; t <= hi; ++t) {
      const float kv = kernel[static_cast<std::size_t>(t + radius)];
      const float* src = tmp.row(static_cast<std::size_t>(y + t));
      for (int x = 0; x < w; ++x) dst[x] += kv * src[x];
    }
  }
  return out;
}

layout::MaskImage aerial_image(const layout::MaskImage& mask,
                               double sigma_nm) {
  HSDL_CHECK(sigma_nm > 0.0);
  const double sigma_px = sigma_nm / mask.nm_per_px();
  return convolve_separable(mask, gaussian_kernel_1d(sigma_px));
}

layout::MaskImage aerial_image_mixture(
    const layout::MaskImage& mask, double sigma_nm,
    const std::vector<OpticalKernelTerm>& mixture) {
  if (mixture.empty()) return aerial_image(mask, sigma_nm);
  double total_weight = 0.0;
  for (const OpticalKernelTerm& term : mixture) {
    HSDL_CHECK(term.weight > 0.0 && term.sigma_scale > 0.0);
    total_weight += term.weight;
  }
  layout::MaskImage out(mask.width(), mask.height(), mask.nm_per_px());
  for (const OpticalKernelTerm& term : mixture) {
    layout::MaskImage component =
        aerial_image(mask, sigma_nm * term.sigma_scale);
    const auto w = static_cast<float>(term.weight / total_weight);
    for (std::size_t i = 0; i < out.size(); ++i)
      out.data()[i] += w * component.data()[i];
  }
  return out;
}

}  // namespace hsdl::litho

#include "litho/labeler.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace hsdl::litho {
namespace {

using geom::Coord;
using geom::Point;
using geom::Rect;
using layout::MaskImage;

/// Pixel-space view of a clip's geometry for defect walks.
struct PixelFrame {
  const MaskImage& img;
  Point origin;      // clip window lower-left, nm
  double nm_per_px;

  /// Pixel containing the nm-space point; false if outside the raster.
  bool to_px(Point p, int& x, int& y) const {
    x = static_cast<int>(
        std::floor(static_cast<double>(p.x - origin.x) / nm_per_px));
    y = static_cast<int>(
        std::floor(static_cast<double>(p.y - origin.y) / nm_per_px));
    return x >= 0 && y >= 0 && x < static_cast<int>(img.width()) &&
           y < static_cast<int>(img.height());
  }

  bool printed(Point p) const {
    int x, y;
    if (!to_px(p, x, y)) return false;
    return img.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) >
           0.5f;
  }
};

/// Measures the printed CD through `center` along direction (dx, dy)
/// (unit Manhattan step in nm), bounded by max_walk each way.
double printed_cd(const PixelFrame& frame, Point center, Point step,
                  double step_nm, double max_walk_nm) {
  if (!frame.printed(center)) return 0.0;
  double cd = step_nm;  // the center sample itself
  const int max_steps = static_cast<int>(max_walk_nm / step_nm);
  Point p = center;
  for (int i = 0; i < max_steps; ++i) {
    p += step;
    if (!frame.printed(p)) break;
    cd += step_nm;
  }
  p = center;
  const Point back{-step.x, -step.y};
  for (int i = 0; i < max_steps; ++i) {
    p += back;
    if (!frame.printed(p)) break;
    cd += step_nm;
  }
  return cd;
}

/// True when the shapes list covers `p` by a shape other than `self`.
bool covered_by_other(const std::vector<Rect>& shapes, std::size_t self,
                      Point p) {
  for (std::size_t i = 0; i < shapes.size(); ++i)
    if (i != self && shapes[i].contains(p)) return true;
  return false;
}

bool covered_by_any(const std::vector<Rect>& shapes, Point p) {
  for (const Rect& r : shapes)
    if (r.contains(p)) return true;
  return false;
}

struct EdgeSample {
  Point at;       // on the edge, nm
  Point outward;  // unit outward normal (Manhattan)
  bool line_end;  // short edge of an elongated rect
};

/// Samples the boundary of `r` at `step_nm` pitch. Corners are inset by one
/// step so walks measure edge behaviour, not corner rounding.
std::vector<EdgeSample> sample_edges(const Rect& r, Coord step_nm) {
  std::vector<EdgeSample> out;
  const bool horiz = r.width() >= r.height();  // long axis
  auto add_edge = [&](Point a, Point b, Point outward, bool is_end) {
    const Coord len = manhattan_distance(a, b);
    if (len < step_nm) {
      // Short edge: single midpoint sample.
      out.push_back({{(a.x + b.x) / 2, (a.y + b.y) / 2}, outward, is_end});
      return;
    }
    const Point dir{(b.x - a.x) / len, (b.y - a.y) / len};
    for (Coord d = step_nm / 2; d < len; d += step_nm)
      out.push_back({a + dir * d, outward, is_end});
  };
  // Inset sampling line by one pixel-ish amount (1 nm) so "on the edge"
  // samples sit just inside the shape.
  add_edge({r.lo.x, r.lo.y}, {r.hi.x - 1, r.lo.y}, {0, -1}, !horiz);
  add_edge({r.lo.x, r.hi.y - 1}, {r.hi.x - 1, r.hi.y - 1}, {0, 1}, !horiz);
  add_edge({r.lo.x, r.lo.y}, {r.lo.x, r.hi.y - 1}, {-1, 0}, horiz);
  add_edge({r.hi.x - 1, r.lo.y}, {r.hi.x - 1, r.hi.y - 1}, {1, 0}, horiz);
  return out;
}

}  // namespace

const char* to_string(DefectType type) {
  switch (type) {
    case DefectType::kNecking:
      return "necking";
    case DefectType::kBridging:
      return "bridging";
    case DefectType::kLineEndPullback:
      return "line-end-pullback";
  }
  return "?";
}

HotspotLabeler::HotspotLabeler(const LithoConfig& config)
    : sim_(config),
      mild_sim_(mild_variant(config)),
      harsh_sim_(harsh_variant(config)) {}

DefectReport HotspotLabeler::analyze(const layout::Clip& clip) const {
  return analyze_with(sim_, clip);
}

DefectReport HotspotLabeler::analyze_with(const LithoSimulator& sim,
                                          const layout::Clip& clip) const {
  DefectReport report;
  if (clip.shapes.empty()) return report;

  const LithoConfig& cfg = sim.config();
  const PrintedStack stack = sim.print(clip);
  const Point origin = clip.window.lo;
  const PixelFrame nominal{stack.nominal, origin, cfg.grid_nm};
  const PixelFrame under{stack.under, origin, cfg.grid_nm};
  const PixelFrame over{stack.over, origin, cfg.grid_nm};

  const auto step = static_cast<Coord>(cfg.sample_step_nm);
  const double walk_step = cfg.grid_nm;

  // Margin: defects whose mechanism lies outside the analysis core are the
  // neighbouring clip's responsibility; skip samples within one PSF of the
  // clip edge to avoid boundary artefacts of the zero-field assumption.
  const auto margin = static_cast<Coord>(3.0 * cfg.sigma_nm);
  const Rect core = clip.window.inflated(-margin);

  for (std::size_t si = 0; si < clip.shapes.size(); ++si) {
    const Rect shape = clip.shapes[si].intersect(clip.window);
    if (shape.empty()) continue;

    // ---- necking: centerline CD at the under-dose corner ----
    const bool horiz = shape.width() >= shape.height();
    const Point cross_dir = horiz ? Point{0, 1} : Point{1, 0};
    const Coord clen = horiz ? shape.width() : shape.height();
    const Point cstart = horiz ? Point{shape.lo.x, shape.center().y}
                               : Point{shape.center().x, shape.lo.y};
    const Point cdir = horiz ? Point{1, 0} : Point{0, 1};
    // Stay clear of the line ends: tip retreat is the pullback check's
    // business, and counting it here would double-report every line end
    // as a neck. Short shapes (contacts, stubs) get a single mid sample.
    const auto end_inset =
        static_cast<Coord>(cfg.epe_tol_nm + cfg.grid_nm);
    std::vector<Coord> centers;
    if (clen >= 2 * end_inset + step) {
      for (Coord d = end_inset; d <= clen - end_inset; d += step)
        centers.push_back(d);
    } else {
      centers.push_back(clen / 2);
    }
    for (Coord d : centers) {
      const Point p = cstart + cdir * d;
      if (!core.contains(p)) continue;
      // CD measured in grid-sized steps along the cross direction.
      const Point px_step{cross_dir.x * static_cast<Coord>(walk_step),
                          cross_dir.y * static_cast<Coord>(walk_step)};
      const double cd =
          printed_cd(under, p, px_step, walk_step, cfg.max_walk_nm);
      if (cd < cfg.neck_tol_nm) {
        report.defects.push_back(
            {DefectType::kNecking, p, cfg.neck_tol_nm - cd});
      }
    }

    // ---- edge walks: bridging (over corner) and pullback (nominal) ----
    for (const EdgeSample& es : sample_edges(shape, step)) {
      if (!core.contains(es.at)) continue;

      // Bridging: walk outward at the over corner; if resist stays printed
      // across a genuine space until we enter another mask shape, the space
      // has bridged. The walk must traverse at least one uncovered sample —
      // abutting/overlapping rectangles of the same wire are not a bridge.
      {
        Point p = es.at;
        const Point stepv{es.outward.x * static_cast<Coord>(walk_step),
                          es.outward.y * static_cast<Coord>(walk_step)};
        double walked = 0.0;
        std::size_t space_steps = 0;
        bool connected = true;
        bool reached_other = false;
        while (walked < cfg.max_walk_nm) {
          p += stepv;
          walked += walk_step;
          if (!covered_by_any(clip.shapes, p)) {
            ++space_steps;
            if (!over.printed(p)) {
              connected = false;
              break;
            }
          } else if (space_steps > 0) {
            reached_other = true;  // crossed a space into mask geometry
            break;
          } else if (!covered_by_other(clip.shapes, si, p)) {
            break;  // still inside the same shape stack — not a space yet
          }
          // Overlapping same-wire rectangle: keep walking until real space.
        }
        if (connected && reached_other && space_steps > 0)
          report.defects.push_back({DefectType::kBridging, es.at, walked});
      }

      // Line-end pullback: on short edges, walk inward at nominal until the
      // printed contour is found; deep retreat is an EPE defect.
      if (es.line_end) {
        Point p = es.at;
        const Point stepv{-es.outward.x * static_cast<Coord>(walk_step),
                          -es.outward.y * static_cast<Coord>(walk_step)};
        double pullback = 0.0;
        while (pullback < cfg.max_walk_nm && !nominal.printed(p) &&
               shape.contains(p)) {
          p += stepv;
          pullback += walk_step;
        }
        if (pullback > cfg.epe_tol_nm)
          report.defects.push_back(
              {DefectType::kLineEndPullback, es.at, pullback});
      }
    }
  }
  return report;
}

layout::HotspotLabel HotspotLabeler::label(const layout::Clip& clip) const {
  // Defective under forgiving conditions: a clear hotspot.
  if (analyze_with(mild_sim_, clip).is_hotspot())
    return layout::HotspotLabel::kHotspot;
  // Clean even under punishing conditions: a clear non-hotspot.
  if (!analyze_with(harsh_sim_, clip).is_hotspot())
    return layout::HotspotLabel::kNonHotspot;
  return layout::HotspotLabel::kUnknown;  // marginal band
}

void HotspotLabeler::label_all(std::vector<layout::LabeledClip>& clips) const {
  for (layout::LabeledClip& lc : clips) lc.label = label(lc.clip);
}

}  // namespace hsdl::litho

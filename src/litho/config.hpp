// Lithography model configuration.
//
// The paper's ground-truth labels come from an industrial simulator; this
// library substitutes a compact first-principles model: a Gaussian point
// spread function (the standard single-kernel approximation of a partially
// coherent 193i system), a constant-threshold resist, and a three-corner
// process window (nominal / under-dose+defocus / over-dose+defocus).
// Defaults are calibrated (tests/litho/calibration_test.cpp) so that
// design-rule-clean relaxed patterns print and rule-floor aggressive
// patterns fail at realistic rates.
#pragma once

#include <vector>

namespace hsdl::litho {

/// Exposure/defocus corner. Dose scales aerial intensity; defocus widens
/// the effective PSF.
struct ProcessCorner {
  double dose = 1.0;
  double defocus_blur = 1.0;  ///< multiplies the PSF sigma
};

/// One term of a sum-of-Gaussians optical kernel (SOCS-style
/// approximation of partially coherent imaging). `sigma_scale` multiplies
/// the base sigma; weights are normalized internally so the open-frame
/// intensity stays 1.0.
struct OpticalKernelTerm {
  double weight = 1.0;
  double sigma_scale = 1.0;
};

struct LithoConfig {
  /// Simulation grid pitch (nm per pixel).
  double grid_nm = 4.0;
  /// Optional sum-of-Gaussians kernel mixture. Empty = the single-Gaussian
  /// model. A typical two-term mixture adds a wide low-weight flare term:
  ///   {{0.85, 1.0}, {0.15, 2.5}}.
  std::vector<OpticalKernelTerm> kernel_mixture;
  /// Gaussian PSF sigma at nominal focus (nm). ~k1*lambda/NA scale; at the
  /// 40 nm line / 40 nm space rule floor, sigma = 18 nm puts minimum-pitch
  /// patterns right at the resolution edge (marginal, not hopeless).
  double sigma_nm = 18.0;
  /// Constant resist threshold relative to open-frame intensity 1.0.
  /// 0.5 is the symmetric point for equal line/space gratings.
  double threshold = 0.5;

  ProcessCorner nominal{1.0, 1.0};
  ProcessCorner under{0.94, 1.08};  ///< under-dose + defocus: opens/necks
  ProcessCorner over{1.06, 1.08};   ///< over-dose + defocus: bridges

  // -- defect detection tolerances (nm) --
  /// Printed CD below this at the under corner is a necking defect.
  double neck_tol_nm = 18.0;
  /// Line-end pullback beyond this at nominal is an EPE defect.
  double epe_tol_nm = 30.0;
  /// Edge/centerline sampling pitch.
  double sample_step_nm = 20.0;
  /// Maximum normal-direction search distance.
  double max_walk_nm = 100.0;

  // -- labeling margin --
  // HotspotLabeler classifies with a *mild* and a *harsh* variant of the
  // process corners: hotspot = defective even at the mild corners,
  // non-hotspot = clean even at the harsh corners, anything in between is
  // ambiguous (kUnknown). This mirrors curated benchmark suites, which
  // keep a severity margin between the two populations.
  /// Dose delta between mild and harsh corners.
  double dose_margin = 0.035;
  /// Defocus-blur delta between mild and harsh corners.
  double blur_margin = 0.06;
  /// Fractional widening/narrowing of neck/EPE tolerances.
  double tol_margin = 0.5;
};

/// The mild variant (harder to fail) of a config's corner set.
inline LithoConfig mild_variant(const LithoConfig& base) {
  LithoConfig c = base;
  c.under.dose += base.dose_margin;
  c.over.dose -= base.dose_margin;
  c.under.defocus_blur -= base.blur_margin;
  c.over.defocus_blur -= base.blur_margin;
  c.neck_tol_nm *= 1.0 - base.tol_margin;
  c.epe_tol_nm *= 1.0 + base.tol_margin;
  return c;
}

/// The harsh variant (easier to fail).
inline LithoConfig harsh_variant(const LithoConfig& base) {
  LithoConfig c = base;
  c.under.dose -= base.dose_margin;
  c.over.dose += base.dose_margin;
  c.under.defocus_blur += base.blur_margin;
  c.over.defocus_blur += base.blur_margin;
  c.neck_tol_nm *= 1.0 + base.tol_margin;
  c.epe_tol_nm *= 1.0 - base.tol_margin;
  return c;
}

}  // namespace hsdl::litho

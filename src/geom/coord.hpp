// Layout coordinate type.
//
// All layout geometry is expressed in integer nanometres (database units),
// matching mask-layout practice: grids are snapped, and integer arithmetic
// keeps boolean operations exact.
#pragma once

#include <cstdint>

namespace hsdl::geom {

/// Coordinate in nanometres.
using Coord = std::int64_t;

/// Area/accumulation type (products of coordinates).
using Area = std::int64_t;

}  // namespace hsdl::geom

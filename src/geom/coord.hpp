// Layout coordinate type.
//
// All layout geometry is expressed in integer nanometres (database units),
// matching mask-layout practice: grids are snapped, and integer arithmetic
// keeps boolean operations exact.
#pragma once

#include <cstdint>

namespace hsdl::geom {

/// Coordinate in nanometres.
using Coord = std::int64_t;

/// Area/accumulation type (products of coordinates).
using Area = std::int64_t;

/// Floor division toward negative infinity (C++ '/' truncates toward
/// zero, which is wrong for the negative coordinates layout frames
/// allow). `b` must be positive.
constexpr Coord floor_div(Coord a, Coord b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

/// Ceiling division toward positive infinity. `b` must be positive.
constexpr Coord ceil_div(Coord a, Coord b) {
  return a > 0 ? (a + b - 1) / b : -(-a / b);
}

}  // namespace hsdl::geom

// Region utilities over collections of rectangles.
//
// The layout generator needs (1) exact union area (to compute pattern
// density), (2) fast "does this new shape violate min-spacing against what
// is already placed" queries. A uniform grid bin index keeps the latter
// O(local density) per query, which is the standard trick in DRC engines.
#pragma once

#include <vector>

#include "geom/rect.hpp"

namespace hsdl::geom {

/// Exact area of the union of (possibly overlapping) rectangles,
/// via coordinate-compressed sweep. O(n^2) worst case, fine for clips.
Area union_area(const std::vector<Rect>& rects);

/// Uniform-grid spatial index over rectangles for overlap / spacing queries.
class RectIndex {
 public:
  /// `extent` bounds all inserted shapes; `bin_size` trades memory for query
  /// locality (choose ~ the typical shape pitch).
  RectIndex(const Rect& extent, Coord bin_size);

  /// Inserts a rectangle (must intersect the extent).
  void insert(const Rect& r);

  /// All stored rectangles whose *inflated* neighbourhood intersects `r`.
  /// `margin` inflates the query (use the min-spacing rule).
  std::vector<Rect> query(const Rect& r, Coord margin = 0) const;

  /// True if `r` overlaps any stored rect, or comes within `min_spacing`
  /// of one (edge-to-edge).
  bool violates_spacing(const Rect& r, Coord min_spacing) const;

  std::size_t size() const { return rects_.size(); }
  const std::vector<Rect>& rects() const { return rects_; }

 private:
  struct BinRange {
    std::size_t x0, x1, y0, y1;  // inclusive bin coordinates
  };
  BinRange bins_for(const Rect& r) const;

  Rect extent_;
  Coord bin_size_;
  std::size_t nx_, ny_;
  std::vector<std::vector<std::size_t>> bins_;  // indices into rects_
  std::vector<Rect> rects_;
};

}  // namespace hsdl::geom

#include "geom/region.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace hsdl::geom {

Area union_area(const std::vector<Rect>& rects) {
  // Coordinate-compress x; for each x-strip, union the y-intervals of the
  // rectangles covering it.
  std::set<Coord> xs;
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    xs.insert(r.lo.x);
    xs.insert(r.hi.x);
  }
  if (xs.size() < 2) return 0;

  Area total = 0;
  auto it = xs.begin();
  Coord prev_x = *it;
  for (++it; it != xs.end(); ++it) {
    const Coord cur_x = *it;
    // Collect y-intervals of rects covering this strip.
    std::vector<std::pair<Coord, Coord>> iv;
    for (const Rect& r : rects) {
      if (r.empty() || r.lo.x > prev_x || r.hi.x < cur_x) continue;
      if (r.lo.x <= prev_x && r.hi.x >= cur_x)
        iv.emplace_back(r.lo.y, r.hi.y);
    }
    std::sort(iv.begin(), iv.end());
    Coord covered = 0;
    Coord open_lo = 0, open_hi = 0;
    bool open = false;
    for (auto [lo, hi] : iv) {
      if (!open) {
        open_lo = lo;
        open_hi = hi;
        open = true;
      } else if (lo <= open_hi) {
        open_hi = std::max(open_hi, hi);
      } else {
        covered += open_hi - open_lo;
        open_lo = lo;
        open_hi = hi;
      }
    }
    if (open) covered += open_hi - open_lo;
    total += static_cast<Area>(covered) * (cur_x - prev_x);
    prev_x = cur_x;
  }
  return total;
}

RectIndex::RectIndex(const Rect& extent, Coord bin_size)
    : extent_(extent), bin_size_(bin_size) {
  HSDL_CHECK(!extent.empty());
  HSDL_CHECK(bin_size > 0);
  nx_ = static_cast<std::size_t>((extent.width() + bin_size - 1) / bin_size);
  ny_ = static_cast<std::size_t>((extent.height() + bin_size - 1) / bin_size);
  nx_ = std::max<std::size_t>(nx_, 1);
  ny_ = std::max<std::size_t>(ny_, 1);
  bins_.resize(nx_ * ny_);
}

RectIndex::BinRange RectIndex::bins_for(const Rect& r) const {
  auto clamp_bin = [](Coord v, std::size_t n) {
    if (v < 0) return std::size_t{0};
    std::size_t b = static_cast<std::size_t>(v);
    return b >= n ? n - 1 : b;
  };
  return {clamp_bin((r.lo.x - extent_.lo.x) / bin_size_, nx_),
          clamp_bin((r.hi.x - 1 - extent_.lo.x) / bin_size_, nx_),
          clamp_bin((r.lo.y - extent_.lo.y) / bin_size_, ny_),
          clamp_bin((r.hi.y - 1 - extent_.lo.y) / bin_size_, ny_)};
}

void RectIndex::insert(const Rect& r) {
  HSDL_CHECK(!r.empty());
  const std::size_t id = rects_.size();
  rects_.push_back(r);
  BinRange b = bins_for(r);
  for (std::size_t by = b.y0; by <= b.y1; ++by)
    for (std::size_t bx = b.x0; bx <= b.x1; ++bx)
      bins_[by * nx_ + bx].push_back(id);
}

std::vector<Rect> RectIndex::query(const Rect& r, Coord margin) const {
  const Rect q = r.inflated(margin);
  std::vector<Rect> out;
  if (q.empty()) return out;
  std::vector<bool> seen(rects_.size(), false);
  BinRange b = bins_for(q);
  for (std::size_t by = b.y0; by <= b.y1; ++by)
    for (std::size_t bx = b.x0; bx <= b.x1; ++bx)
      for (std::size_t id : bins_[by * nx_ + bx]) {
        if (seen[id]) continue;
        seen[id] = true;
        if (rects_[id].overlaps(q)) out.push_back(rects_[id]);
      }
  return out;
}

bool RectIndex::violates_spacing(const Rect& r, Coord min_spacing) const {
  // A shape violates spacing if any stored shape overlaps it or lies closer
  // than min_spacing edge-to-edge. Inflating by (min_spacing - 1) and
  // testing open-interval overlap realizes "spacing < min_spacing".
  const Rect q = r.inflated(min_spacing > 0 ? min_spacing - 1 : 0);
  BinRange b = bins_for(q);
  for (std::size_t by = b.y0; by <= b.y1; ++by)
    for (std::size_t bx = b.x0; bx <= b.x1; ++bx)
      for (std::size_t id : bins_[by * nx_ + bx]) {
        const Rect& s = rects_[id];
        if (s.overlaps(r)) return true;
        if (min_spacing > 0 && rect_spacing(s, r) < min_spacing) return true;
      }
  return false;
}

}  // namespace hsdl::geom

// 2-D integer point / vector.
#pragma once

#include <compare>
#include <cstdlib>

#include "geom/coord.hpp"

namespace hsdl::geom {

/// Point (or displacement vector) in nanometres.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  constexpr Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(Point o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(Coord s) const { return {x * s, y * s}; }
  Point& operator+=(Point o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point& operator-=(Point o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
};

/// L1 (Manhattan) distance — the natural metric for rectilinear layout.
inline Coord manhattan_distance(Point a, Point b) {
  return std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
}

}  // namespace hsdl::geom

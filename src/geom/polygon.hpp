// Rectilinear (Manhattan) polygon.
//
// Mask layouts are rectilinear: every edge is horizontal or vertical.
// Polygons are stored as a counter-clockwise vertex ring without a repeated
// closing vertex. The main operation the rest of the library needs is
// decomposition into non-overlapping rectangles (for rasterization and I/O).
#pragma once

#include <vector>

#include "geom/rect.hpp"

namespace hsdl::geom {

class Polygon {
 public:
  Polygon() = default;

  /// Builds from a vertex ring. Throws CheckError unless the ring has >= 4
  /// vertices and alternating horizontal/vertical edges (rectilinear).
  explicit Polygon(std::vector<Point> ring);

  /// A rectangle as a 4-vertex polygon.
  static Polygon from_rect(const Rect& r);

  const std::vector<Point>& ring() const { return ring_; }
  bool empty() const { return ring_.empty(); }

  /// Signed area by the shoelace formula; positive for CCW rings.
  Area signed_area() const;

  /// Absolute enclosed area.
  Area area() const;

  /// Axis-aligned bounding box.
  Rect bbox() const;

  /// Point-in-polygon (even-odd rule, closed-open edges consistent with
  /// Rect::contains for rectangle-shaped polygons).
  bool contains(Point p) const;

  /// Decomposes the polygon interior into disjoint rectangles whose union
  /// is exactly the polygon (horizontal slab decomposition).
  std::vector<Rect> decompose() const;

  /// Polygon translated by `d`.
  Polygon shifted(Point d) const;

 private:
  std::vector<Point> ring_;
};

/// True if `ring` is a valid rectilinear ring: >= 4 vertices, consecutive
/// vertices differ in exactly one coordinate, and edge directions alternate.
bool is_rectilinear_ring(const std::vector<Point>& ring);

}  // namespace hsdl::geom

// Axis-aligned rectangle, the workhorse shape of mask layout.
//
// A Rect is half-open in neither direction: it stores its lower-left (lo)
// and upper-right (hi) corners and covers the closed-open region
// [lo.x, hi.x) x [lo.y, hi.y) when rasterized, which makes abutting
// rectangles tile without double-covered pixels. A Rect with
// lo.x >= hi.x or lo.y >= hi.y is empty.
#pragma once

#include <algorithm>
#include <compare>

#include "geom/point.hpp"

namespace hsdl::geom {

struct Rect {
  Point lo;
  Point hi;

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  static constexpr Rect from_xywh(Coord x, Coord y, Coord w, Coord h) {
    return {{x, y}, {x + w, y + h}};
  }

  constexpr Coord width() const { return hi.x - lo.x; }
  constexpr Coord height() const { return hi.y - lo.y; }
  constexpr bool empty() const { return width() <= 0 || height() <= 0; }
  constexpr Area area() const {
    return empty() ? 0 : static_cast<Area>(width()) * height();
  }
  constexpr Point center() const {
    return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2};
  }

  /// Point containment (closed-open convention).
  constexpr bool contains(Point p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
  }

  /// True if `other` lies fully inside this rectangle.
  constexpr bool contains(const Rect& other) const {
    return !other.empty() && other.lo.x >= lo.x && other.lo.y >= lo.y &&
           other.hi.x <= hi.x && other.hi.y <= hi.y;
  }

  /// True if the interiors intersect (touching edges do not count).
  constexpr bool overlaps(const Rect& other) const {
    return lo.x < other.hi.x && other.lo.x < hi.x && lo.y < other.hi.y &&
           other.lo.y < hi.y;
  }

  /// Intersection; empty Rect if disjoint.
  constexpr Rect intersect(const Rect& other) const {
    Rect r{{std::max(lo.x, other.lo.x), std::max(lo.y, other.lo.y)},
           {std::min(hi.x, other.hi.x), std::min(hi.y, other.hi.y)}};
    return r;
  }

  /// Smallest rectangle covering both.
  constexpr Rect bbox_union(const Rect& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return {{std::min(lo.x, other.lo.x), std::min(lo.y, other.lo.y)},
            {std::max(hi.x, other.hi.x), std::max(hi.y, other.hi.y)}};
  }

  /// Rectangle grown by `margin` on all four sides (negative shrinks).
  constexpr Rect inflated(Coord margin) const {
    return {{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }

  /// Rectangle translated by `d`.
  constexpr Rect shifted(Point d) const { return {lo + d, hi + d}; }
};

/// Minimum edge-to-edge separation between two disjoint rectangles in the
/// L-infinity sense used by spacing design rules; 0 if they overlap/touch.
inline Coord rect_spacing(const Rect& a, const Rect& b) {
  Coord dx = std::max({a.lo.x - b.hi.x, b.lo.x - a.hi.x, Coord{0}});
  Coord dy = std::max({a.lo.y - b.hi.y, b.lo.y - a.hi.y, Coord{0}});
  // Diagonal separation uses the Euclidean-style corner rule common in DRC:
  // both axes positive means corner-to-corner; the binding constraint is the
  // max single-axis gap for rectilinear rules.
  return std::max(dx, dy);
}

}  // namespace hsdl::geom

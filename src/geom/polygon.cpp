#include "geom/polygon.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace hsdl::geom {

bool is_rectilinear_ring(const std::vector<Point>& ring) {
  if (ring.size() < 4) return false;
  const std::size_t n = ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % n];
    const bool horizontal = a.y == b.y && a.x != b.x;
    const bool vertical = a.x == b.x && a.y != b.y;
    if (!horizontal && !vertical) return false;
    // Edges must alternate direction, otherwise there is a redundant
    // collinear vertex (still representable, but we canonicalize it away).
    const Point& c = ring[(i + 2) % n];
    const bool next_horizontal = b.y == c.y && b.x != c.x;
    if (horizontal == next_horizontal) return false;
  }
  return true;
}

Polygon::Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {
  HSDL_CHECK_MSG(is_rectilinear_ring(ring_),
                 "polygon ring is not a simple rectilinear ring of "
                     << ring_.size() << " vertices");
}

Polygon Polygon::from_rect(const Rect& r) {
  HSDL_CHECK(!r.empty());
  return Polygon({{r.lo.x, r.lo.y},
                  {r.hi.x, r.lo.y},
                  {r.hi.x, r.hi.y},
                  {r.lo.x, r.hi.y}});
}

Area Polygon::signed_area() const {
  Area twice = 0;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice / 2;
}

Area Polygon::area() const {
  Area s = signed_area();
  return s < 0 ? -s : s;
}

Rect Polygon::bbox() const {
  if (ring_.empty()) return {};
  Rect r{ring_[0], ring_[0]};
  for (const Point& p : ring_) {
    r.lo.x = std::min(r.lo.x, p.x);
    r.lo.y = std::min(r.lo.y, p.y);
    r.hi.x = std::max(r.hi.x, p.x);
    r.hi.y = std::max(r.hi.y, p.y);
  }
  return r;
}

bool Polygon::contains(Point p) const {
  // Even-odd ray cast against vertical edges only (sufficient for
  // rectilinear polygons): count vertical edges strictly to the right of p
  // whose y-span covers p.y under the closed-open convention.
  bool inside = false;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    if (a.x != b.x) continue;  // horizontal edge
    Coord ylo = std::min(a.y, b.y);
    Coord yhi = std::max(a.y, b.y);
    if (p.y >= ylo && p.y < yhi && p.x < a.x) inside = !inside;
  }
  return inside;
}

std::vector<Rect> Polygon::decompose() const {
  // Horizontal slab decomposition: cut the polygon at every distinct vertex
  // y, and within each slab find covered x-intervals by even-odd counting
  // of vertical edges crossing the slab.
  std::vector<Rect> out;
  if (ring_.empty()) return out;

  std::set<Coord> ys;
  for (const Point& p : ring_) ys.insert(p.y);

  struct VEdge {
    Coord x, ylo, yhi;
  };
  std::vector<VEdge> vedges;
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    if (a.x == b.x)
      vedges.push_back({a.x, std::min(a.y, b.y), std::max(a.y, b.y)});
  }

  auto it = ys.begin();
  Coord prev_y = *it;
  for (++it; it != ys.end(); ++it) {
    const Coord cur_y = *it;
    // Vertical edges spanning this slab, sorted by x; consecutive pairs
    // bound covered intervals (even-odd rule on a simple polygon).
    std::vector<Coord> xs;
    for (const VEdge& e : vedges)
      if (e.ylo <= prev_y && e.yhi >= cur_y) xs.push_back(e.x);
    std::sort(xs.begin(), xs.end());
    HSDL_DCHECK(xs.size() % 2 == 0);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2)
      out.push_back({{xs[i], prev_y}, {xs[i + 1], cur_y}});
    prev_y = cur_y;
  }
  return out;
}

Polygon Polygon::shifted(Point d) const {
  std::vector<Point> moved = ring_;
  for (Point& p : moved) p += d;
  Polygon out;
  out.ring_ = std::move(moved);
  return out;
}

}  // namespace hsdl::geom

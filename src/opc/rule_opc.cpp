#include "opc/rule_opc.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "geom/region.hpp"

namespace hsdl::opc {
namespace {

using geom::Coord;
using geom::Rect;

/// True if `candidate` keeps min spacing against every other shape
/// (overlaps with other shapes are allowed — that is connected metal).
bool spacing_ok(const Rect& candidate, std::size_t self,
                const std::vector<Rect>& shapes, Coord min_space) {
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (i == self) continue;
    const Rect& other = shapes[i];
    if (other.empty() || candidate.overlaps(other)) continue;
    const Coord gap = geom::rect_spacing(candidate, other);
    if (gap > 0 && gap < min_space) return false;
  }
  return true;
}

}  // namespace

OpcResult correct(const layout::Clip& clip, const OpcConfig& config) {
  HSDL_CHECK(config.line_end_extension >= 0);
  HSDL_CHECK(config.small_feature_bias >= 0);
  OpcResult result;
  result.corrected = clip;
  std::vector<Rect>& shapes = result.corrected.shapes;

  const Coord snap = config.rules.grid;
  const Coord ext = (config.line_end_extension / snap) * snap;
  const Coord bias = (config.small_feature_bias / snap) * snap;

  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const Rect original = shapes[i];
    if (original.empty()) continue;
    const Coord w = std::min(original.width(), original.height());
    const Coord l = std::max(original.width(), original.height());

    if (static_cast<double>(l) >=
            config.line_aspect * static_cast<double>(w) &&
        ext > 0) {
      // Line: try to extend each end independently.
      const bool horizontal = original.width() >= original.height();
      for (int end = 0; end < 2; ++end) {
        Rect candidate = shapes[i];
        if (horizontal) {
          (end == 0 ? candidate.lo.x : candidate.hi.x) +=
              (end == 0 ? -ext : ext);
        } else {
          (end == 0 ? candidate.lo.y : candidate.hi.y) +=
              (end == 0 ? -ext : ext);
        }
        candidate = candidate.intersect(clip.window);
        if (candidate == shapes[i]) continue;  // window blocked it
        if (spacing_ok(candidate, i, shapes, config.spacing_guard)) {
          shapes[i] = candidate;
          ++result.ends_extended;
        } else {
          ++result.corrections_skipped;
        }
      }
    } else if (w < config.small_feature_limit && l < 2 * w && bias > 0) {
      // Small compact feature: bias outward on all sides.
      Rect candidate = original.inflated(bias).intersect(clip.window);
      if (spacing_ok(candidate, i, shapes, config.spacing_guard)) {
        shapes[i] = candidate;
        ++result.features_upsized;
      } else {
        ++result.corrections_skipped;
      }
    }
  }
  return result;
}

}  // namespace hsdl::opc

// Rule-based optical proximity correction (OPC-lite).
//
// The classic first-generation OPC moves the paper's own motivation in
// the opposite direction: instead of detecting patterns that print badly,
// pre-distort the mask so they print better. Two rules are implemented:
//   * line-end extension — elongated shapes grow at their short edges to
//     compensate pull-back, when the extension keeps min spacing;
//   * small-feature upsizing — near-minimum squares (contacts) are biased
//     outward to survive the under-dose corner, when spacing allows.
// Both corrections are spacing-aware: a correction that would create a
// sub-rule gap (and thereby trade a pullback defect for a bridge) is
// skipped. The companion experiment (bench_ablation_sweeps /
// tests/opc) measures the hotspot-rate reduction through the litho
// labeler.
#pragma once

#include "layout/clip.hpp"
#include "layout/generator.hpp"

namespace hsdl::opc {

struct OpcConfig {
  layout::DesignRules rules;
  /// Line-end extension length (nm, snapped to grid).
  geom::Coord line_end_extension = 20;
  /// Shapes with min dimension below this are upsizing candidates.
  geom::Coord small_feature_limit = 50;
  /// Outward bias per side for small features (nm).
  geom::Coord small_feature_bias = 10;
  /// Aspect ratio (long/short) above which a shape counts as a line.
  double line_aspect = 2.0;
  /// Minimum post-correction gap to any other shape. Plain DRC legality
  /// (min_space) is not enough: a correction that leaves exactly the
  /// rule-floor gap trades a pull-back defect for a bridging risk at the
  /// over-dose corner, so corrections keep extra headroom.
  geom::Coord spacing_guard = 60;
};

struct OpcResult {
  layout::Clip corrected;
  std::size_t ends_extended = 0;
  std::size_t features_upsized = 0;
  std::size_t corrections_skipped = 0;  ///< blocked by the spacing guard
};

/// Applies both correction rules to a clip. Shapes never leave the clip
/// window; corrections that would violate min spacing are skipped.
OpcResult correct(const layout::Clip& clip, const OpcConfig& config);

}  // namespace hsdl::opc

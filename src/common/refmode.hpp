// Process-wide reference-mode switch for the serving fast paths.
//
// The direct-convolution, operator-fusion and banded-DCT fast paths each
// keep their original implementation alive as a reference oracle. With
// reference mode on, Conv2d falls back to im2col+GEMM, Sequential::infer
// runs every layer unfused, and feature extraction uses the per-block
// path — i.e. the exact pre-optimization serving pipeline. Benchmarks use
// it to measure the honest baseline; equivalence tests flip it to assert
// the fast paths match bitwise.
//
// The flag is read per call with relaxed ordering: flip it only while no
// inference is in flight (benchmarks and tests do so between phases).
#pragma once

#include <atomic>

namespace hsdl::runtime {

inline std::atomic<bool>& reference_mode_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline bool reference_mode() {
  return reference_mode_flag().load(std::memory_order_relaxed);
}

inline void set_reference_mode(bool on) {
  reference_mode_flag().store(on, std::memory_order_relaxed);
}

/// RAII guard for tests/benchmarks: enters the given mode, restores the
/// previous one on scope exit.
class ReferenceModeGuard {
 public:
  explicit ReferenceModeGuard(bool on) : prev_(reference_mode()) {
    set_reference_mode(on);
  }
  ~ReferenceModeGuard() { set_reference_mode(prev_); }
  ReferenceModeGuard(const ReferenceModeGuard&) = delete;
  ReferenceModeGuard& operator=(const ReferenceModeGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace hsdl::runtime

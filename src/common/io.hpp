// Binary-format substrate shared by every on-disk format in the library.
//
// Persistence used to be ad-hoc: raw native-endian struct writes with no
// version field, no checksum, and non-atomic file replacement. This header
// centralizes the wire-format primitives every format (NN checkpoints,
// detector bundles, GLF clip sets, GDSII streams) builds on:
//
//   * ByteWriter / ByteReader — bounds-checked little-endian (plus
//     big-endian accessors for GDSII) primitives over an in-memory
//     buffer. Every reader failure throws IoError carrying the byte
//     offset and a stream context string, so corruption reports point at
//     the damaged byte instead of saying "truncated".
//   * {magic, version, flags} container header helpers with version
//     range enforcement.
//   * crc32 — the standard reflected CRC-32 (polynomial 0xEDB88320, the
//     zlib/PNG one), usable incrementally.
//   * atomic_write_file — write temp + rename, so a crash mid-write can
//     never destroy the previous good file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/check.hpp"

namespace hsdl::io {

/// Structured I/O failure: CheckError (so existing handlers keep
/// working) plus the byte offset where decoding failed and the context
/// (file name / format) it failed in.
class IoError : public CheckError {
 public:
  IoError(const std::string& what, std::uint64_t offset, std::string context);

  std::uint64_t offset() const { return offset_; }
  const std::string& context() const { return context_; }

 private:
  std::uint64_t offset_;
  std::string context_;
};

/// Reflected CRC-32 (polynomial 0xEDB88320). `seed` chains incremental
/// updates: crc32(ab) == crc32(b, crc32(a)).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);
inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

/// Appends little-endian primitives to a growable in-memory buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  /// IEEE-754 binary64 via its bit pattern (exact round-trip).
  void f64(double v);
  /// Bulk float payload; a single memcpy on little-endian hosts.
  void f32_array(const float* data, std::size_t n);
  void bytes(const void* data, std::size_t n);
  /// u32 length prefix followed by the raw bytes.
  void str(std::string_view s);

  std::size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over an in-memory buffer. Every accessor
/// validates the remaining length first and throws IoError (with the
/// current offset and the reader's context string) instead of reading
/// past the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data, std::string context = "stream");

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  void f32_array(float* out, std::size_t n);
  /// Big-endian accessors (GDSII is a big-endian stream format).
  std::uint16_t u16_be();
  std::uint32_t u32_be();
  std::uint64_t u64_be();
  std::int16_t i16_be() { return static_cast<std::int16_t>(u16_be()); }
  std::int32_t i32_be() { return static_cast<std::int32_t>(u32_be()); }
  /// Raw view of the next n bytes.
  std::string_view bytes(std::size_t n);
  /// u32-length-prefixed string; lengths above `max_len` are rejected.
  std::string str(std::size_t max_len = 1u << 20);

  std::uint64_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  /// Rejects trailing data: throws IoError unless the buffer is fully
  /// consumed.
  void expect_end();

  /// Throws IoError at the current offset with this reader's context.
  [[noreturn]] void fail(const std::string& msg) const;

 private:
  const unsigned char* need(std::size_t n, const char* what);

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// Fixed container prologue for versioned binary formats: an 8-byte
/// magic, then u32 version and u32 flags (little-endian).
struct FormatHeader {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
};
inline constexpr std::size_t kMagicSize = 8;
inline constexpr std::size_t kFormatHeaderSize = kMagicSize + 8;

/// `magic` must be exactly kMagicSize bytes.
void write_format_header(ByteWriter& w, std::string_view magic,
                         std::uint32_t version, std::uint32_t flags);
/// Verifies the magic and that version lies in [min_version,
/// max_version]; throws IoError otherwise.
FormatHeader read_format_header(ByteReader& r, std::string_view magic,
                                std::uint32_t min_version,
                                std::uint32_t max_version);

/// Writes `payload` to `path` atomically: the bytes go to "<path>.tmp"
/// first and the temp file is renamed over the target only after a
/// successful full write, so an interrupted save leaves any previous
/// file at `path` intact.
void atomic_write_file(const std::string& path, std::string_view payload);

/// Reads a whole file (binary) into memory; throws IoError on failure.
std::string read_file(const std::string& path);

/// Drains the rest of a stream into memory.
std::string read_stream(std::istream& is);

}  // namespace hsdl::io

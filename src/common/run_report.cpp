#include "common/run_report.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "common/io.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace hsdl::telemetry {

JsonlStream::JsonlStream(const std::string& path) : path_(path) {
  if (path.empty()) return;
  out_.open(path, std::ios::binary | std::ios::trunc);
  HSDL_CHECK_MSG(out_.is_open(),
                 "cannot open telemetry stream '" << path << "'");
}

void JsonlStream::emit(const json::Value& record) {
  if (!out_.is_open()) return;
  const std::string line = record.dump();
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();
}

RunReport::RunReport(std::string kind)
    : kind_(std::move(kind)), sections_(json::Value::object()) {}

void RunReport::add(const std::string& key, json::Value v) {
  sections_.set(key, std::move(v));
}

json::Value RunReport::to_json() const {
  json::Value root = json::Value::object();
  root.set("schema", json::Value("hsdl-run-report-v1"));
  root.set("kind", json::Value(kind_));
  for (const auto& [key, value] : sections_.members()) root.set(key, value);
  root.set("metrics", metrics::to_json(metrics::snapshot()));
  json::Value trace_info = json::Value::object();
  trace_info.set("events", json::Value(trace::event_count()));
  trace_info.set("dropped", json::Value(trace::dropped_count()));
  root.set("trace", std::move(trace_info));
  return root;
}

void RunReport::write(const std::string& path) const {
  io::atomic_write_file(path, to_json().dump() + "\n");
}

std::string run_report_path_from_env() {
  const char* env = std::getenv("HSDL_RUN_REPORT");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace hsdl::telemetry

#include "common/trace.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "common/io.hpp"
#include "common/json.hpp"

namespace hsdl::trace {
namespace {

/// Per-thread buffer cap: a runaway span site cannot grow memory without
/// bound; overflow increments the dropped counter instead.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct Event {
  const char* name;  // string literal, owned by the call site
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::uint64_t trace_id;  // 0 = no request context
};

struct ThreadBuffer {
  std::mutex mu;  // contended only by the exporter, never by other spans
  std::uint32_t tid = 0;
  std::vector<Event> events;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // outlives every recording thread
  return *r;
}

std::atomic<std::uint64_t> g_dropped{0};

ThreadBuffer& local_buffer() {
  // The shared_ptr keeps the buffer alive in the registry after the
  // thread exits, so export still sees its events.
  static thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            std::uint64_t trace_id) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(Event{name, begin_ns, end_ns, trace_id});
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buffer : r.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::size_t event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t total = 0;
  for (auto& buffer : r.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::uint64_t dropped_count() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  // Hand-rolled serialization: a long run buffers hundreds of thousands
  // of events, so we append directly instead of building a json::Value
  // tree. Timestamps convert to the microseconds Chrome expects.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buffer : r.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (const Event& e : buffer->events) {
      if (!first) out += ',';
      first = false;
      char fields[224];
      if (e.trace_id != 0) {
        // The trace id is emitted as a string: Chrome's JSON consumer
        // (and strict parsers) would round u64 ids through a double.
        std::snprintf(fields, sizeof(fields),
                      ",\"cat\":\"hsdl\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                      "\"ts\":%.3f,\"dur\":%.3f,"
                      "\"args\":{\"trace_id\":\"%llx\"}}",
                      buffer->tid, static_cast<double>(e.begin_ns) / 1e3,
                      static_cast<double>(e.end_ns - e.begin_ns) / 1e3,
                      static_cast<unsigned long long>(e.trace_id));
      } else {
        std::snprintf(fields, sizeof(fields),
                      ",\"cat\":\"hsdl\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                      "\"ts\":%.3f,\"dur\":%.3f}",
                      buffer->tid, static_cast<double>(e.begin_ns) / 1e3,
                      static_cast<double>(e.end_ns - e.begin_ns) / 1e3);
      }
      out += "{\"name\":";
      out += json::escape(e.name);
      out += fields;
    }
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path) {
  io::atomic_write_file(path, chrome_trace_json());
}

}  // namespace hsdl::trace

// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms with per-thread sharded accumulation.
//
// Design rules:
//   * Observation never perturbs the observed computation: instruments
//     only read clocks and bump atomics — no locks on record paths, no
//     effect on RNG streams or float arithmetic, so the bitwise
//     parallel==serial determinism contract holds with metrics enabled.
//   * The runtime switch (set_enabled) gates every record call; the
//     disabled path is a relaxed atomic load + branch — a handful of
//     instructions, no heap allocation — so instruments can live on hot
//     kernels (gemm, conv2d, feature extraction) unconditionally.
//   * Hot-path writes are sharded: each thread accumulates into its own
//     cache-line-padded slot (by a stable per-thread index), so
//     concurrent recorders do not bounce a shared line. Reads (value(),
//     snapshot()) sum the shards.
//
// Usage: resolve the instrument once via a function-local static, then
// record unconditionally —
//
//   static metrics::Counter& flops = metrics::counter("gemm.flops");
//   flops.add(2 * m * n * k);
//
// Instruments are created on first lookup and live for the process
// lifetime; looking up the same name returns the same instrument.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace hsdl::metrics {

namespace detail {
extern std::atomic<bool> g_enabled;
/// Stable shard index for the calling thread in [0, kShards).
std::size_t this_thread_shard();
/// Lock-free add for pre-C++20-toolchain atomic<double>.
void atomic_add(std::atomic<double>& a, double v);
}  // namespace detail

/// Global switch, default off. Enabling is retroactive only for future
/// records; instruments keep whatever they accumulated while enabled.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Number of per-thread accumulation slots per instrument. Threads hash
/// onto shards by a stable per-thread counter; more threads than shards
/// degrade gracefully to shared fetch_adds.
constexpr std::size_t kShards = 16;

/// Monotonic event/quantity accumulator.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) {
    if (!enabled()) return;
    shards_[detail::this_thread_shard()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  std::uint64_t value() const;
  void reset();
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  Shard shards_[kShards];
};

/// Last-written instantaneous value (queue depths, rates, thread counts).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts samples <= upper_bounds[i]
/// (first matching bound); one implicit overflow bucket catches the rest.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v);

  std::uint64_t count() const;
  double sum() const;
  /// i in [0, upper_bounds().size()]; the last index is the overflow
  /// bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  void reset();
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> n{0};
    std::atomic<double> sum{0.0};
  };
  std::string name_;
  std::vector<double> bounds_;
  std::size_t stride_;  // buckets per shard, padded to a cache line
  std::vector<std::atomic<std::uint64_t>> counts_;  // kShards * stride_
  Shard sums_[kShards];
};

/// Get-or-create by name. The returned reference is valid for the
/// process lifetime. A histogram name reused with different bounds
/// returns the existing instrument (first bounds win).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     std::vector<double> upper_bounds);

struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;  // upper_bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

Snapshot snapshot();

/// Zeroes every registered instrument (the registry itself persists).
void reset();

/// Interpolated quantile estimate from a histogram snapshot, q in
/// [0, 1]. The estimate interpolates linearly *within* the bucket that
/// holds the target rank (lower edge = previous upper bound, 0 for the
/// first bucket of a non-negative histogram) instead of returning the
/// bucket's upper bound — the latter overstates tail quantiles by up to
/// a whole bucket width when buckets are wide (a p99 landing at the
/// bottom of a [0.1, 1.0] s bucket would read as 1.0 s, 9x too high).
/// Samples in the overflow bucket clamp to the last bound (there is no
/// upper edge to interpolate toward). Returns 0 for an empty histogram.
double quantile(const HistogramSnapshot& snap, double q);

/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
json::Value to_json(const Snapshot& snap);

/// Operator-facing digest of a snapshot: counters and gauges verbatim,
/// histograms reduced to {count, sum, mean, p50, p90, p99} via
/// quantile(). This is the shape the serving stats surface returns —
/// small enough to emit every few seconds, rich enough to decompose a
/// p99 regression into stages.
json::Value summary_json(const Snapshot& snap);

}  // namespace hsdl::metrics

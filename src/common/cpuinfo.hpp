// Runtime CPU-feature detection shared by every SIMD kernel.
//
// The GEMM microkernel, the direct convolution kernels and the DCT band
// transform all dispatch between a hand-written AVX2 variant and a
// portable scalar fallback. The decision is centralized here so it is
// made the same way everywhere:
//   * the host must support AVX2 and FMA (one combined predicate — every
//     AVX2 part of interest ships FMA, and the GEMM microkernel needs
//     both), and
//   * the HSDL_FORCE_SCALAR environment variable (any non-empty value)
//     forces the scalar path, so CI can build and test the fallback on
//     AVX2 hosts.
//
// The choice depends only on the host CPU and the environment, never on
// thread count or problem shape, so a given process always takes the
// same path — the determinism suite's guarantees are unaffected.
#pragma once

namespace hsdl::cpu {

/// True when AVX2+FMA kernels may be used: host support present and the
/// scalar override is off. Cheap enough to call per kernel invocation.
bool has_avx2_fma();

/// True when the scalar fallback is forced (HSDL_FORCE_SCALAR set at
/// startup, or set_force_scalar(true)).
bool force_scalar();

/// Test hook: force (or un-force) the scalar path at runtime. Kernels
/// re-dispatch on their next call.
void set_force_scalar(bool on);

/// "avx2" or "scalar" — the path kernels will take right now.
const char* active_isa();

}  // namespace hsdl::cpu

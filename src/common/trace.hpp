// Scoped trace spans with Chrome trace-event JSON export.
//
// HSDL_TRACE_SPAN("gemm") opens a span for the enclosing scope; the
// destructor records name, begin/end timestamps and the recording thread.
// Buffers are per-thread (a span never contends with spans on other
// threads), and chrome_trace_json() serializes everything recorded so far
// as complete-event ("ph":"X") Chrome trace JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// The runtime switch (set_enabled) gates recording: when disabled, a
// span's constructor is a relaxed atomic load + branch and its destructor
// a null check — a handful of instructions, no clock reads, no heap
// allocation — so spans can sit on hot kernels unconditionally. Span
// names must be string literals (or otherwise outlive the export):
// events store the pointer, not a copy.
//
// Like the metrics registry, recording only reads clocks and appends to
// thread-local buffers — it never perturbs RNG streams or float math, so
// the parallel==serial determinism contract holds with tracing enabled.
//
// Trace context (DESIGN.md §15): a span may carry a 64-bit trace id.
// Spans recorded on different threads with the same id stitch into one
// request tree in the exported JSON (the id is emitted as
// args.trace_id, so chrome://tracing / Perfetto can filter one sampled
// request end to end: recv → quota → queue-wait → extract → forward →
// send). Id 0 means "no context" and is exported without args. emit()
// records a span from explicit timestamps for stages whose begin was
// observed before the id was known (e.g. a frame's arrival time,
// captured before the frame was decoded as a sampled request).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace hsdl::trace {

namespace detail {
extern std::atomic<bool> g_enabled;
/// Nanoseconds on the steady clock since the process trace epoch.
std::uint64_t now_ns();
void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            std::uint64_t trace_id = 0);
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Drops every buffered event (dropped-event count included).
void clear();

/// Events currently buffered across all threads.
std::size_t event_count();

/// Events discarded because a thread hit its buffer cap (see
/// kMaxEventsPerThread in trace.cpp).
std::uint64_t dropped_count();

/// Current timestamp on the trace clock (nanoseconds since the process
/// trace epoch) — pair with emit() to record a span whose begin was
/// observed before its name/id was known. 0-cost only when you gate the
/// call on enabled() yourself.
inline std::uint64_t timestamp_ns() { return detail::now_ns(); }

/// Records one complete span from explicit trace-clock timestamps,
/// optionally tagged with a trace id (see the header comment). No-op
/// while tracing is disabled.
inline void emit(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns, std::uint64_t trace_id = 0) {
  if (enabled()) detail::record(name, begin_ns, end_ns, trace_id);
}

/// RAII span; prefer the HSDL_TRACE_SPAN / HSDL_TRACE_SPAN_ID macros.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t trace_id = 0)
      : name_(enabled() ? name : nullptr),
        begin_(name_ != nullptr ? detail::now_ns() : 0),
        trace_id_(trace_id) {}
  ~Span() {
    if (name_ != nullptr)
      detail::record(name_, begin_, detail::now_ns(), trace_id_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t begin_;
  std::uint64_t trace_id_;
};

/// Serializes all buffered events as Chrome trace-event JSON.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path` (atomic: temp + rename).
void write_chrome_trace(const std::string& path);

}  // namespace hsdl::trace

#define HSDL_TRACE_CONCAT_IMPL(a, b) a##b
#define HSDL_TRACE_CONCAT(a, b) HSDL_TRACE_CONCAT_IMPL(a, b)
/// Traces the enclosing scope; `name` must be a string literal.
#define HSDL_TRACE_SPAN(name) \
  ::hsdl::trace::Span HSDL_TRACE_CONCAT(hsdl_trace_span_, __COUNTER__)(name)
/// As HSDL_TRACE_SPAN, tagged with a 64-bit trace id for cross-thread
/// request stitching (0 = untagged).
#define HSDL_TRACE_SPAN_ID(name, id)                                 \
  ::hsdl::trace::Span HSDL_TRACE_CONCAT(hsdl_trace_span_, __COUNTER__)( \
      name, id)

#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/string_util.hpp"

namespace hsdl {
namespace {

constexpr int kLevelUnset = -1;

/// Explicit set_log_level override; kLevelUnset falls through to the
/// HSDL_LOG_LEVEL / kInfo default.
std::atomic<int> g_level{kLevelUnset};

/// Serializes line formatting + emission so concurrent writers never
/// interleave partial lines; also guards the sink.
std::mutex& log_mutex() {
  static std::mutex* mu = new std::mutex();  // outlives every logger
  return *mu;
}

LogSink& sink_slot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel env_default_level() {
  if (const char* env = std::getenv("HSDL_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
    std::fprintf(stderr, "[WARN] ignoring bad HSDL_LOG_LEVEL='%s'\n", env);
  }
  return LogLevel::kInfo;
}

/// Seconds on the monotonic clock since the first log call.
double elapsed_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

/// Small stable per-thread id for the line prefix.
std::size_t thread_log_id() {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  const int v = g_level.load(std::memory_order_relaxed);
  if (v != kLevelUnset) return static_cast<LogLevel>(v);
  // Environment default, resolved once at first use (mirrors how
  // HSDL_THREADS configures the thread pool).
  static const LogLevel env_level = env_default_level();
  return env_level;
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(log_mutex());
  sink_slot() = std::move(sink);
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const double t = elapsed_seconds();
  const std::size_t tid = thread_log_id();
  std::lock_guard<std::mutex> lock(log_mutex());
  // A message containing newlines becomes several prefixed lines, each
  // emitted whole under the single mutex hold.
  std::size_t start = 0;
  while (start <= msg.size()) {
    const std::size_t nl = msg.find('\n', start);
    const std::size_t end = nl == std::string::npos ? msg.size() : nl;
    const std::string line =
        strfmt("[%-5s %11.6f t%02zu] %.*s", level_name(level), t, tid,
               static_cast<int>(end - start), msg.data() + start);
    if (const LogSink& sink = sink_slot()) {
      sink(level, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
}

}  // namespace detail
}  // namespace hsdl

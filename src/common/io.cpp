#include "common/io.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>

namespace hsdl::io {
namespace {

std::string format_io_error(const std::string& what, std::uint64_t offset,
                            const std::string& context) {
  std::ostringstream os;
  os << context << ": " << what << " (at byte " << offset << ")";
  return os.str();
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

IoError::IoError(const std::string& what, std::uint64_t offset,
                 std::string context)
    : CheckError(format_io_error(what, offset, context)),
      offset_(offset),
      context_(std::move(context)) {}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

// -- ByteWriter --------------------------------------------------------------

void ByteWriter::u8(std::uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xFFu));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xFFFFu));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::f32_array(const float* data, std::size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    bytes(data, n * sizeof(float));
  } else {
    for (std::size_t i = 0; i < n; ++i) f32(data[i]);
  }
}

void ByteWriter::bytes(const void* data, std::size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

// -- ByteReader --------------------------------------------------------------

ByteReader::ByteReader(std::string_view data, std::string context)
    : data_(data), context_(std::move(context)) {}

const unsigned char* ByteReader::need(std::size_t n, const char* what) {
  if (remaining() < n) {
    std::ostringstream os;
    os << "truncated: need " << n << " byte(s) for " << what << ", have "
       << remaining();
    fail(os.str());
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t ByteReader::u8() { return *need(1, "u8"); }

std::uint16_t ByteReader::u16() {
  const unsigned char* p = need(2, "u16");
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t ByteReader::u32() {
  const unsigned char* p = need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::u64() {
  const unsigned char* p = need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

float ByteReader::f32() { return std::bit_cast<float>(u32()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

void ByteReader::f32_array(float* out, std::size_t n) {
  const unsigned char* p = need(n * sizeof(float), "f32 payload");
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, p, n * sizeof(float));
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t v = 0;
      for (int b = 3; b >= 0; --b)
        v = (v << 8) | p[i * 4 + static_cast<std::size_t>(b)];
      out[i] = std::bit_cast<float>(v);
    }
  }
}

std::uint16_t ByteReader::u16_be() {
  const unsigned char* p = need(2, "u16");
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) |
                                    p[1]);
}

std::uint32_t ByteReader::u32_be() {
  const unsigned char* p = need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::u64_be() {
  const unsigned char* p = need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

std::string_view ByteReader::bytes(std::size_t n) {
  const unsigned char* p = need(n, "raw bytes");
  return {reinterpret_cast<const char*>(p), n};
}

std::string ByteReader::str(std::size_t max_len) {
  const std::uint32_t n = u32();
  if (n > max_len) {
    std::ostringstream os;
    os << "implausible string length " << n << " (limit " << max_len << ")";
    fail(os.str());
  }
  return std::string(bytes(n));
}

void ByteReader::expect_end() {
  if (!at_end()) {
    std::ostringstream os;
    os << remaining() << " trailing byte(s) after the end of the format";
    fail(os.str());
  }
}

void ByteReader::fail(const std::string& msg) const {
  throw IoError(msg, pos_, context_);
}

// -- format header -----------------------------------------------------------

void write_format_header(ByteWriter& w, std::string_view magic,
                         std::uint32_t version, std::uint32_t flags) {
  HSDL_CHECK_MSG(magic.size() == kMagicSize,
                 "format magic must be exactly " << kMagicSize << " bytes");
  w.bytes(magic.data(), magic.size());
  w.u32(version);
  w.u32(flags);
}

FormatHeader read_format_header(ByteReader& r, std::string_view magic,
                                std::uint32_t min_version,
                                std::uint32_t max_version) {
  HSDL_CHECK_MSG(magic.size() == kMagicSize,
                 "format magic must be exactly " << kMagicSize << " bytes");
  const std::string_view got = r.bytes(kMagicSize);
  if (got != magic) r.fail("bad magic (not a recognized format)");
  FormatHeader h;
  h.version = r.u32();
  h.flags = r.u32();
  if (h.version < min_version || h.version > max_version) {
    std::ostringstream os;
    os << "unsupported format version " << h.version << " (supported "
       << min_version << ".." << max_version << ")";
    r.fail(os.str());
  }
  return h;
}

// -- files -------------------------------------------------------------------

void atomic_write_file(const std::string& path, std::string_view payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.good())
      throw IoError("cannot open temp file '" + tmp + "' for writing", 0,
                    path);
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      throw IoError("write to temp file '" + tmp + "' failed", 0, path);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("rename of temp file onto '" + path + "' failed", 0, path);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good())
    throw IoError("cannot open file for reading", 0, path);
  std::ostringstream os;
  os << is.rdbuf();
  if (is.bad()) throw IoError("read failed", 0, path);
  return os.str();
}

std::string read_stream(std::istream& is) {
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace hsdl::io

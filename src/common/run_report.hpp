// Run telemetry artifacts: JSONL event streams and per-run JSON reports.
//
// JsonlStream appends one JSON object per line — the machine-readable
// telemetry format the trainer, biased learner and scanner emit (each
// line is written and flushed atomically under a mutex, so concurrent
// emitters cannot interleave partial records and a crash loses at most
// the line being written).
//
// RunReport aggregates one training or scan run into a single JSON
// artifact: caller-provided sections plus the current metrics snapshot
// and trace totals, so every bench and example produces comparable,
// diffable telemetry. See DESIGN.md §10 for the schema.
#pragma once

#include <fstream>
#include <mutex>
#include <string>

#include "common/json.hpp"

namespace hsdl::telemetry {

class JsonlStream {
 public:
  /// Disabled stream: emit() is a no-op.
  JsonlStream() = default;
  /// Opens `path` for writing (truncates; each process run owns its
  /// stream). An empty path constructs a disabled stream.
  explicit JsonlStream(const std::string& path);

  bool enabled() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  /// Writes one record as a single line and flushes. Thread-safe.
  void emit(const json::Value& record);

 private:
  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
};

class RunReport {
 public:
  /// `kind` labels the run ("train", "scan", "bench", ...).
  explicit RunReport(std::string kind);

  /// Sets a top-level field (scalar or nested json::Value section).
  void add(const std::string& key, json::Value v);

  /// Report body: schema tag, kind, caller sections, the metrics
  /// snapshot at call time, and trace event totals.
  json::Value to_json() const;

  /// Writes to_json() to `path` (atomic: temp + rename).
  void write(const std::string& path) const;

 private:
  std::string kind_;
  json::Value sections_;
};

/// Shared CLI/env convention: report path from HSDL_RUN_REPORT, empty
/// when unset (callers treat empty as "no report").
std::string run_report_path_from_env();

}  // namespace hsdl::telemetry

// Deterministic, seedable fault injection (DESIGN.md §14).
//
// Reliability code is only trustworthy when failure is a tested input.
// This registry lets tests and chaos runs arm named injection points
// spread through the serving stack (net layer, frame codec, inference
// engine, chip scanner) with a declarative plan: which sites fire, with
// what kind of fault, at what probability, after how many probes, and
// how often. The firing schedule is a pure function of (plan seed, site
// name, per-spec probe counter), so a given plan replays the same fault
// pattern per site regardless of thread interleaving — the property the
// chaos suite leans on when it asserts invariants across seeds.
//
// Cost model: when disarmed (the production default) a probe is one
// relaxed atomic load — callers guard any site-name construction behind
// armed(), so the disarmed serving path pays under 1% (measured by
// bench_serving_latency against the pre-fault baseline). Defining
// HSDL_FAULT_DISABLED at compile time removes even that load.
//
// Arming: programmatic (fault::arm / fault::ScopedPlan in tests) or via
// the environment for chaos runs of the stock binaries:
//
//   HSDL_FAULT_SPEC="serve.handler=delay:0.01:2;serve.net.recv=fail:0.005"
//   HSDL_FAULT_SEED=7 ./hsdl_serve --demo
//
// Spec grammar: site=kind[:probability[:param[:start_after[:max_fires]]]]
// separated by ';'. `site` matches exactly, or by prefix when it ends
// with '*'. Kinds: fail, delay (param = milliseconds), short (param =
// fraction of the I/O to let through), nan, alloc.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsdl::fault {

enum class Kind : std::uint8_t {
  kFail,       ///< the injection point reports failure (dropped connection,
               ///< failed band, ...); the call site decides what that means
  kDelay,      ///< sleep param milliseconds, then continue normally
  kShortIo,    ///< truncate an I/O to floor(param * n) bytes, then fail
  kNan,        ///< corrupt a score to quiet NaN
  kAllocFail,  ///< simulated allocation failure (call site throws bad_alloc)
};

const char* kind_name(Kind kind);

struct Spec {
  /// Site name, or a prefix ending in '*' matching every site under it.
  std::string site;
  Kind kind = Kind::kFail;
  /// Chance of firing per matching probe, in [0, 1].
  double probability = 1.0;
  /// Kind-specific parameter: delay milliseconds (kDelay) or the
  /// fraction of the I/O to let through (kShortIo).
  double param = 0.0;
  /// Number of matching probes to let pass before the spec becomes
  /// eligible to fire (deterministic "fail the Nth call" scheduling).
  std::uint64_t start_after = 0;
  /// Stop firing after this many fires (0 = unlimited).
  std::uint64_t max_fires = 0;
};

struct Plan {
  std::vector<Spec> specs;
  std::uint64_t seed = 1;
};

/// What a probe hit: the fault kind and its parameter.
struct Hit {
  Kind kind;
  double param;
};

/// Installs `plan` and turns the armed fast-path flag on. Replaces any
/// previous plan; counters restart from zero.
void arm(Plan plan);
/// Removes the plan; probes return to the one-relaxed-load fast path.
void disarm();
/// True when a plan is installed. One relaxed atomic load.
bool armed();

/// Parses the HSDL_FAULT_SPEC grammar (see header comment). Throws
/// CheckError with the offending clause on malformed input.
Plan parse_spec(const std::string& text, std::uint64_t seed = 1);

/// Arms from HSDL_FAULT_SPEC / HSDL_FAULT_SEED when set; no-op (and no
/// arming) otherwise. Returns true when a plan was armed. Binaries call
/// this once at startup so chaos runs need no code changes.
bool arm_from_env();

/// Seed override for tests that sweep seeds from the environment:
/// HSDL_FAULT_SEED when set, `fallback` otherwise.
std::uint64_t seed_from_env(std::uint64_t fallback);

/// Fires-so-far at one site (exact name, not pattern) and in total.
std::uint64_t fires(std::string_view site);
std::uint64_t total_fires();

/// Core probe: returns the fault that fired at `site`, if any. kDelay
/// is handled internally (the probe sleeps, counts the fire, and
/// returns nullopt) because every call site would do the same thing.
std::optional<Hit> probe(std::string_view site);

/// probe() shaped for go/no-go sites: true when a kFail fired.
bool fail_point(std::string_view site);

/// probe() shaped for I/O sites: the number of bytes to let through
/// before simulating peer failure, or nullopt when nothing fired.
/// kFail maps to 0 bytes; kShortIo maps to floor(param * n), clamped
/// to [0, n-1] so a fired probe always truncates.
std::optional<std::size_t> short_io(std::string_view site, std::size_t n);

/// probe() shaped for score-corruption sites: quiet NaN when kNan
/// fired, `value` unchanged otherwise.
double corrupt_score(std::string_view site, double value);

/// probe() shaped for allocation sites: throws std::bad_alloc when
/// kAllocFail fired.
void alloc_guard(std::string_view site);

/// RAII arm/disarm for tests.
class ScopedPlan {
 public:
  explicit ScopedPlan(Plan plan) { arm(std::move(plan)); }
  ~ScopedPlan() { disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace hsdl::fault

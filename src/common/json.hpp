// Minimal JSON value type with a strict parser and compact serializer.
//
// Backs the observability layer: telemetry JSONL records, RunReport
// artifacts and metrics snapshots are built as json::Value trees, and the
// unit tests parse the emitted bytes back to schema-check them. This is a
// deliberately small subset implementation (numbers are doubles, object
// member order is preserved, no streaming) — not a general JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace hsdl::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T v) : kind_(Kind::kNumber), num_(static_cast<double>(v)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::kString), str_(s) {}

  static Value array() { return Value(Kind::kArray); }
  static Value object() { return Value(Kind::kObject); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Accessors check the kind (HSDL_CHECK) before returning.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  /// Appends to an array (the value must be an array).
  void push_back(Value v);
  /// Sets an object member, replacing an existing key (must be an object).
  void set(std::string key, Value v);

  std::size_t size() const;

  /// Compact serialization. Non-finite numbers serialize as null (JSON
  /// has no NaN/Inf), integral doubles print without a fraction.
  std::string dump() const;

 private:
  explicit Value(Kind k) : kind_(k) {}

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Escapes `s` into a double-quoted JSON string literal.
std::string escape(std::string_view s);

/// Strict parser for one JSON document (trailing whitespace allowed,
/// anything else after the value fails). Malformed input throws
/// hsdl::CheckError with a byte offset in the message.
Value parse(std::string_view text);

}  // namespace hsdl::json

// Error-checking helpers.
//
// HSDL_CHECK is used for recoverable precondition violations on public API
// boundaries (throws hsdl::CheckError). HSDL_DCHECK compiles out in release
// builds and guards internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hsdl {

/// Exception thrown when a runtime precondition check fails.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

/// Lazily builds the failure message only when a check actually fails.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace hsdl

#define HSDL_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::hsdl::detail::check_failed(#cond, __FILE__, __LINE__, "");        \
  } while (false)

#define HSDL_CHECK_MSG(cond, ...)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::hsdl::detail::CheckMessageBuilder hsdl_cmb_;                      \
      hsdl_cmb_ << __VA_ARGS__;                                           \
      ::hsdl::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                   hsdl_cmb_.str());                      \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define HSDL_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define HSDL_DCHECK(cond) HSDL_CHECK(cond)
#endif

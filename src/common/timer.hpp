// Wall-clock timing for benchmark harnesses and run telemetry (scan
// reports and trainer histories record elapsed seconds from it; ODST
// itself is derived in hotspot/scanner.hpp and hotspot/metrics.hpp).
#pragma once

#include <chrono>

namespace hsdl {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hsdl

#include "common/cpuinfo.hpp"

#include <atomic>
#include <cstdlib>

namespace hsdl::cpu {
namespace {

bool host_supports_avx2_fma() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool env_force_scalar() {
  const char* v = std::getenv("HSDL_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& force_flag() {
  // First touch seeds the flag from the environment; set_force_scalar
  // overrides it afterwards.
  static std::atomic<bool> flag{env_force_scalar()};
  return flag;
}

}  // namespace

bool force_scalar() {
  return force_flag().load(std::memory_order_relaxed);
}

void set_force_scalar(bool on) {
  force_flag().store(on, std::memory_order_relaxed);
}

bool has_avx2_fma() {
  static const bool host = host_supports_avx2_fma();
  return host && !force_scalar();
}

const char* active_isa() { return has_avx2_fma() ? "avx2" : "scalar"; }

}  // namespace hsdl::cpu

#include "common/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/metrics.hpp"

namespace hsdl {
namespace {

// Set while a thread (worker or caller) executes chunks of a region.
thread_local bool tl_in_region = false;

std::size_t env_default_threads() {
  if (const char* env = std::getenv("HSDL_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

std::atomic<std::size_t> g_thread_override{0};  // 0 = use default

/// Persistent worker pool executing one chunked region at a time. All
/// participating threads (n-1 workers plus the caller) pull chunk indices
/// from a shared atomic counter, so load balances itself; chunk->range
/// mapping is fixed by the caller, so WHAT each chunk computes never
/// depends on scheduling.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_job_.notify_all();
    for (std::thread& t : workers_)
      if (t.joinable()) t.join();
  }

  /// Runs fn(chunk) for chunks [0, chunks) on up to `threads` threads
  /// (caller included). Returns false without running anything when the
  /// pool is busy with another top-level region — the caller then runs
  /// the loop inline, which keeps independent callers deadlock-free.
  bool try_run(std::size_t chunks, std::size_t threads,
               const std::function<void(std::size_t)>& fn) {
    std::unique_lock<std::mutex> run_lock(run_mu_, std::try_to_lock);
    if (!run_lock.owns_lock()) return false;

    if (metrics::enabled()) {
      static metrics::Counter& regions = metrics::counter("pool.regions");
      static metrics::Counter& total_chunks = metrics::counter("pool.chunks");
      static metrics::Gauge& pool_threads = metrics::gauge("pool.threads");
      regions.increment();
      total_chunks.add(chunks);
      pool_threads.set(static_cast<double>(threads));
    }

    {
      std::unique_lock<std::mutex> lock(mu_);
      const std::size_t want = threads - 1;
      while (workers_.size() < want) {
        // New workers are born synced to the current generation so they
        // never join a region they were not counted into.
        workers_.emplace_back(
            [this, id = workers_.size(), gen = generation_] {
              worker_loop(id, gen);
            });
      }
      job_ = &fn;
      chunk_count_ = chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      // Helpers beyond chunks-1 would only wake to find no work.
      helpers_ = std::min(want, chunks > 0 ? chunks - 1 : 0);
      pending_ = helpers_;
      ++generation_;
    }
    cv_job_.notify_all();

    drain();

    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
    return true;
  }

 private:
  ThreadPool() = default;

  void worker_loop(std::size_t id, std::uint64_t seen) {
    for (;;) {
      // Idle time = wall time this worker spends parked between regions;
      // measured only while metrics are on (two clock reads per wakeup).
      const bool track_idle = metrics::enabled();
      std::chrono::steady_clock::time_point wait_begin;
      if (track_idle) wait_begin = std::chrono::steady_clock::now();
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_job_.wait(lock, [&] {
          return stop_ || (generation_ != seen && id < helpers_);
        });
        if (stop_) return;
        seen = generation_;
      }
      if (track_idle) {
        static metrics::Counter& idle = metrics::counter("pool.idle_micros");
        idle.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - wait_begin)
                .count()));
      }
      drain();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) cv_done_.notify_all();
      }
    }
  }

  void drain() {
    tl_in_region = true;
    for (;;) {
      const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunk_count_) break;
      try {
        (*job_)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    tl_in_region = false;
  }

  std::mutex run_mu_;  // serializes top-level regions

  std::mutex mu_;
  std::condition_variable cv_job_, cv_done_;
  std::vector<std::thread> workers_;
  std::uint64_t generation_ = 0;
  std::size_t helpers_ = 0;  // workers participating in this generation
  std::size_t pending_ = 0;  // participants that have not finished yet
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t chunk_count_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace

std::size_t hardware_threads() {
  static const std::size_t n = env_default_threads();
  return n;
}

std::size_t num_threads() {
  const std::size_t o = g_thread_override.load(std::memory_order_relaxed);
  return o > 0 ? o : hardware_threads();
}

void set_num_threads(std::size_t n) {
  g_thread_override.store(n, std::memory_order_relaxed);
}

bool in_parallel_region() { return tl_in_region; }

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  const std::size_t threads = num_threads();
  if (grain == 0) {
    grain = (range + threads * 4 - 1) / (threads * 4);
    if (grain == 0) grain = 1;
  }
  const std::size_t chunks = (range + grain - 1) / grain;
  auto run_chunk = [&](std::size_t c) {
    const std::size_t cb = begin + c * grain;
    body(cb, std::min(cb + grain, end));
  };
  // Serial paths: one chunk, one thread, or nested inside a region.
  if (chunks <= 1 || threads <= 1 || tl_in_region) {
    body(begin, end);
    return;
  }
  if (!ThreadPool::instance().try_run(chunks, threads, run_chunk)) {
    body(begin, end);
  }
}

TaskPool::TaskPool(std::size_t threads) {
  HSDL_CHECK_MSG(threads > 0, "TaskPool needs at least one thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

TaskPool::~TaskPool() { shutdown(true); }

void TaskPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    HSDL_CHECK_MSG(!stopping_, "submit on a shut-down TaskPool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void TaskPool::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    discard_ = !drain;
    if (discard_) queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

std::size_t TaskPool::queued() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained (or discarded)
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for_2d(
    std::size_t rows, std::size_t cols, std::size_t row_grain,
    std::size_t col_grain,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& body) {
  if (rows == 0 || cols == 0) return;
  if (row_grain == 0) row_grain = 1;
  if (col_grain == 0) col_grain = cols;
  const std::size_t row_tiles = (rows + row_grain - 1) / row_grain;
  const std::size_t col_tiles = (cols + col_grain - 1) / col_grain;
  parallel_for(0, row_tiles * col_tiles, 1,
               [&](std::size_t tb, std::size_t te) {
                 for (std::size_t t = tb; t < te; ++t) {
                   const std::size_t rt = t / col_tiles;
                   const std::size_t ct = t % col_tiles;
                   const std::size_t r0 = rt * row_grain;
                   const std::size_t c0 = ct * col_grain;
                   body(r0, std::min(r0 + row_grain, rows), c0,
                        std::min(c0 + col_grain, cols));
                 }
               });
}

}  // namespace hsdl

// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (layout generation, weight
// initialization, mini-batch sampling, dropout) draws from an hsdl::Rng so
// that a single seed reproduces an entire experiment bit-for-bit.
// The engine is xoshiro256**, seeded through SplitMix64.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hsdl {

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator so it can also drive <random>
/// distributions, but the member helpers below are preferred: they are
/// guaranteed stable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE1234ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly pick one element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Derive an independent child generator (for parallel or per-component
  /// streams that must not interact).
  Rng fork();

  /// Complete engine state: the four xoshiro256** words plus the
  /// Box-Muller cache normal() keeps between calls. Capturing and
  /// restoring it reproduces the stream exactly — including a pending
  /// cached normal — which is what checkpoint/resume needs for
  /// bit-for-bit training replay.
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool has_cached_normal = false;
    double cached_normal = 0.0;

    friend bool operator==(const State&, const State&) = default;
  };

  State state() const;
  void set_state(const State& state);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hsdl

// Small string helpers shared by the text-format layout reader/writer and
// the benchmark table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hsdl {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hsdl

#include "common/metrics.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "common/check.hpp"

namespace hsdl::metrics {
namespace detail {

std::atomic<bool> g_enabled{false};

namespace {
std::atomic<std::size_t> g_next_thread{0};
}

std::size_t this_thread_shard() {
  static thread_local const std::size_t shard =
      g_next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_)
    total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::string name, std::vector<double> upper_bounds)
    : name_(std::move(name)), bounds_(std::move(upper_bounds)) {
  HSDL_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  HSDL_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  // Pad each shard's bucket row to a whole number of cache lines so
  // recorders on different shards never share a line.
  const std::size_t buckets = bounds_.size() + 1;
  stride_ = (buckets + 7) / 8 * 8;
  counts_ = std::vector<std::atomic<std::uint64_t>>(kShards * stride_);
}

void Histogram::record(double v) {
  if (!enabled()) return;
  // lower_bound keeps samples equal to a bound in that bound's bucket
  // (bucket i counts samples <= upper_bounds[i]).
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = detail::this_thread_shard();
  counts_[shard * stride_ + bucket].fetch_add(1, std::memory_order_relaxed);
  sums_[shard].n.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sums_[shard].sum, v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& s : sums_) total += s.n.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : sums_)
    total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  HSDL_CHECK(i <= bounds_.size());
  std::uint64_t total = 0;
  for (std::size_t shard = 0; shard < kShards; ++shard)
    total += counts_[shard * stride_ + i].load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (Shard& s : sums_) {
    s.n.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

namespace {

/// Registered instruments live for the process lifetime so function-local
/// static references on hot paths can never dangle.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: see above
  return *r;
}

template <typename T, typename... Args>
T& get_or_create(std::vector<std::unique_ptr<T>>& items,
                 const std::string& name, Args&&... args) {
  for (auto& item : items)
    if (item->name() == name) return *item;
  items.push_back(std::make_unique<T>(name, std::forward<Args>(args)...));
  return *items.back();
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return get_or_create(r.counters, name);
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return get_or_create(r.gauges, name);
}

Histogram& histogram(const std::string& name,
                     std::vector<double> upper_bounds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return get_or_create(r.histograms, name, std::move(upper_bounds));
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap;
  for (const auto& c : r.counters)
    snap.counters.emplace_back(c->name(), c->value());
  for (const auto& g : r.gauges)
    snap.gauges.emplace_back(g->name(), g->value());
  for (const auto& h : r.histograms) {
    HistogramSnapshot hs;
    hs.name = h->name();
    hs.upper_bounds = h->upper_bounds();
    for (std::size_t i = 0; i <= hs.upper_bounds.size(); ++i)
      hs.counts.push_back(h->bucket_count(i));
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& c : r.counters) c->reset();
  for (auto& g : r.gauges) g->reset();
  for (auto& h : r.histograms) h->reset();
}

double quantile(const HistogramSnapshot& snap, double q) {
  if (snap.count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(snap.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    cum += snap.counts[i];
    if (static_cast<double>(cum) < target || snap.counts[i] == 0) continue;
    if (i >= snap.upper_bounds.size())  // overflow bucket: no upper edge
      return snap.upper_bounds.back();
    const double hi = snap.upper_bounds[i];
    const double lo =
        i == 0 ? std::min(0.0, hi) : snap.upper_bounds[i - 1];
    const double before = static_cast<double>(cum - snap.counts[i]);
    const double frac =
        (target - before) / static_cast<double>(snap.counts[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return snap.upper_bounds.back();
}

json::Value to_json(const Snapshot& snap) {
  json::Value root = json::Value::object();
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snap.counters)
    counters.set(name, json::Value(value));
  root.set("counters", std::move(counters));
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snap.gauges)
    gauges.set(name, json::Value(value));
  root.set("gauges", std::move(gauges));
  json::Value histograms = json::Value::object();
  for (const HistogramSnapshot& h : snap.histograms) {
    json::Value entry = json::Value::object();
    json::Value bounds = json::Value::array();
    for (const double b : h.upper_bounds) bounds.push_back(json::Value(b));
    entry.set("upper_bounds", std::move(bounds));
    json::Value counts = json::Value::array();
    for (const std::uint64_t c : h.counts) counts.push_back(json::Value(c));
    entry.set("counts", std::move(counts));
    entry.set("count", json::Value(h.count));
    entry.set("sum", json::Value(h.sum));
    histograms.set(h.name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

json::Value summary_json(const Snapshot& snap) {
  json::Value root = json::Value::object();
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snap.counters)
    counters.set(name, json::Value(value));
  root.set("counters", std::move(counters));
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snap.gauges)
    gauges.set(name, json::Value(value));
  root.set("gauges", std::move(gauges));
  json::Value histograms = json::Value::object();
  for (const HistogramSnapshot& h : snap.histograms) {
    json::Value entry = json::Value::object();
    entry.set("count", json::Value(h.count));
    entry.set("sum", json::Value(h.sum));
    entry.set("mean",
              json::Value(h.count == 0
                              ? 0.0
                              : h.sum / static_cast<double>(h.count)));
    entry.set("p50", json::Value(quantile(h, 0.50)));
    entry.set("p90", json::Value(quantile(h, 0.90)));
    entry.set("p99", json::Value(quantile(h, 0.99)));
    histograms.set(h.name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

}  // namespace hsdl::metrics

#include "common/fault.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <thread>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace hsdl::fault {
namespace {

/// SplitMix64: the firing decision for probe k of spec s under seed z
/// is splitmix64(z ^ hash(site) ^ golden*k) — stable across platforms
/// and independent of every other (spec, probe) pair.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

struct SpecState {
  Spec spec;
  std::atomic<std::uint64_t> probes{0};
  std::atomic<std::uint64_t> fired{0};
};

struct Registry {
  std::uint64_t seed = 1;
  // One state per armed spec; probes scan linearly (plans are a handful
  // of specs, and the armed path only exists in tests and chaos runs).
  std::vector<std::unique_ptr<SpecState>> specs;
  std::mutex fires_mu;
  std::map<std::string, std::uint64_t, std::less<>> fires_by_site;
};

std::atomic<bool> g_armed{false};
std::mutex g_mu;  // guards installation/teardown of g_registry
std::shared_ptr<Registry> g_registry;

std::shared_ptr<Registry> registry() {
  std::lock_guard<std::mutex> lk(g_mu);
  return g_registry;
}

bool site_matches(const std::string& pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*')
    return site.substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  return site == pattern;
}

void count_fire(Registry& reg, std::string_view site) {
  std::lock_guard<std::mutex> lk(reg.fires_mu);
  auto it = reg.fires_by_site.find(site);
  if (it == reg.fires_by_site.end())
    reg.fires_by_site.emplace(std::string(site), 1);
  else
    ++it->second;
}

}  // namespace

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kFail:
      return "fail";
    case Kind::kDelay:
      return "delay";
    case Kind::kShortIo:
      return "short";
    case Kind::kNan:
      return "nan";
    case Kind::kAllocFail:
      return "alloc";
  }
  return "unknown";
}

void arm(Plan plan) {
  auto reg = std::make_shared<Registry>();
  reg->seed = plan.seed;
  for (Spec& s : plan.specs) {
    HSDL_CHECK_MSG(!s.site.empty(), "fault spec: empty site name");
    HSDL_CHECK_MSG(s.probability >= 0.0 && s.probability <= 1.0,
                   "fault spec " << s.site << ": probability "
                                 << s.probability << " outside [0, 1]");
    auto state = std::make_unique<SpecState>();
    state->spec = std::move(s);
    reg->specs.push_back(std::move(state));
  }
  {
    std::lock_guard<std::mutex> lk(g_mu);
    g_registry = std::move(reg);
  }
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  g_armed.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lk(g_mu);
  g_registry.reset();
}

bool armed() { return g_armed.load(std::memory_order_relaxed); }

std::optional<Hit> probe(std::string_view site) {
  if (!armed()) return std::nullopt;
  const std::shared_ptr<Registry> reg = registry();
  if (!reg) return std::nullopt;
  for (const std::unique_ptr<SpecState>& state : reg->specs) {
    const Spec& spec = state->spec;
    if (!site_matches(spec.site, site)) continue;
    const std::uint64_t k =
        state->probes.fetch_add(1, std::memory_order_relaxed);
    if (k < spec.start_after) continue;
    if (spec.probability < 1.0) {
      const std::uint64_t draw = splitmix64(
          reg->seed ^ fnv1a(spec.site) ^ (0x9e3779b97f4a7c15ull * (k + 1)));
      const double u =
          static_cast<double>(draw >> 11) * 0x1.0p-53;  // uniform [0, 1)
      if (u >= spec.probability) continue;
    }
    if (spec.max_fires != 0) {
      // Reserve a fire slot; losers of the race past the cap back off.
      const std::uint64_t f =
          state->fired.fetch_add(1, std::memory_order_relaxed);
      if (f >= spec.max_fires) continue;
    } else {
      state->fired.fetch_add(1, std::memory_order_relaxed);
    }
    count_fire(*reg, site);
    if (spec.kind == Kind::kDelay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(spec.param));
      return std::nullopt;
    }
    return Hit{spec.kind, spec.param};
  }
  return std::nullopt;
}

bool fail_point(std::string_view site) {
  const std::optional<Hit> hit = probe(site);
  return hit && hit->kind == Kind::kFail;
}

std::optional<std::size_t> short_io(std::string_view site, std::size_t n) {
  const std::optional<Hit> hit = probe(site);
  if (!hit) return std::nullopt;
  if (hit->kind == Kind::kFail) return 0;
  if (hit->kind != Kind::kShortIo) return std::nullopt;
  const double frac = std::min(std::max(hit->param, 0.0), 1.0);
  std::size_t keep = static_cast<std::size_t>(
      std::floor(frac * static_cast<double>(n)));
  if (n > 0 && keep >= n) keep = n - 1;  // a fired short I/O truncates
  return keep;
}

double corrupt_score(std::string_view site, double value) {
  const std::optional<Hit> hit = probe(site);
  if (hit && hit->kind == Kind::kNan)
    return std::numeric_limits<double>::quiet_NaN();
  return value;
}

void alloc_guard(std::string_view site) {
  const std::optional<Hit> hit = probe(site);
  if (hit && hit->kind == Kind::kAllocFail) throw std::bad_alloc();
}

std::uint64_t fires(std::string_view site) {
  const std::shared_ptr<Registry> reg = registry();
  if (!reg) return 0;
  std::lock_guard<std::mutex> lk(reg->fires_mu);
  const auto it = reg->fires_by_site.find(site);
  return it == reg->fires_by_site.end() ? 0 : it->second;
}

std::uint64_t total_fires() {
  const std::shared_ptr<Registry> reg = registry();
  if (!reg) return 0;
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lk(reg->fires_mu);
  for (const auto& [site, n] : reg->fires_by_site) total += n;
  return total;
}

namespace {

Kind parse_kind(const std::string& text, const std::string& clause) {
  if (text == "fail") return Kind::kFail;
  if (text == "delay") return Kind::kDelay;
  if (text == "short") return Kind::kShortIo;
  if (text == "nan") return Kind::kNan;
  if (text == "alloc") return Kind::kAllocFail;
  throw CheckError("fault spec: unknown kind '" + text + "' in clause '" +
                   clause + "'");
}

double parse_number(const std::string& text, const std::string& clause) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw CheckError("fault spec: bad number '" + text + "' in clause '" +
                     clause + "'");
  }
}

}  // namespace

Plan parse_spec(const std::string& text, std::uint64_t seed) {
  Plan plan;
  plan.seed = seed;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    const std::string clause = text.substr(begin, end - begin);
    begin = end + 1;
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    HSDL_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "fault spec: clause '" << clause
                                          << "' is not site=kind[:...]");
    Spec spec;
    spec.site = clause.substr(0, eq);
    std::vector<std::string> fields;
    std::size_t fb = eq + 1;
    while (fb <= clause.size()) {
      std::size_t fe = clause.find(':', fb);
      if (fe == std::string::npos) fe = clause.size();
      fields.push_back(clause.substr(fb, fe - fb));
      fb = fe + 1;
    }
    HSDL_CHECK_MSG(!fields.empty() && !fields[0].empty(),
                   "fault spec: clause '" << clause << "' has no kind");
    spec.kind = parse_kind(fields[0], clause);
    if (fields.size() > 1) spec.probability = parse_number(fields[1], clause);
    if (fields.size() > 2) spec.param = parse_number(fields[2], clause);
    if (fields.size() > 3)
      spec.start_after =
          static_cast<std::uint64_t>(parse_number(fields[3], clause));
    if (fields.size() > 4)
      spec.max_fires =
          static_cast<std::uint64_t>(parse_number(fields[4], clause));
    HSDL_CHECK_MSG(fields.size() <= 5,
                   "fault spec: clause '" << clause << "' has extra fields");
    plan.specs.push_back(std::move(spec));
  }
  return plan;
}

std::uint64_t seed_from_env(std::uint64_t fallback) {
  const char* seed_env = std::getenv("HSDL_FAULT_SEED");
  if (seed_env == nullptr || *seed_env == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(seed_env, nullptr, 10));
}

bool arm_from_env() {
  const char* spec_env = std::getenv("HSDL_FAULT_SPEC");
  if (spec_env == nullptr || *spec_env == '\0') return false;
  Plan plan = parse_spec(spec_env, seed_from_env(1));
  HSDL_LOG(kInfo) << "fault injection armed from HSDL_FAULT_SPEC ("
                  << plan.specs.size() << " specs, seed " << plan.seed << ")";
  arm(std::move(plan));
  return true;
}

}  // namespace hsdl::fault

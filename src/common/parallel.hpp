// Shared parallel-execution substrate: a lazily initialized global thread
// pool with chunked parallel-for primitives.
//
// Design rules (every caller in this library relies on them):
//   * Determinism: parallel_for partitions an index range into disjoint
//     chunks; callers only ever write disjoint outputs per chunk, so the
//     result is bitwise identical to serial execution for any thread
//     count. Never parallelize over a reduction dimension — reduce
//     partials in a fixed order on the calling thread instead.
//   * Reentrancy: a parallel_for issued from inside a parallel region
//     (nested parallelism) executes inline on the calling thread, so
//     composed parallel code (e.g. gemm inside a per-sample conv loop)
//     cannot deadlock or oversubscribe.
//   * Exceptions thrown by the body are captured and rethrown on the
//     calling thread after all workers finish the region.
//
// The worker count defaults to std::thread::hardware_concurrency(), is
// overridable process-wide by the HSDL_THREADS environment variable
// (checked once, at first use), and at runtime by set_num_threads().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hsdl {

/// Default thread count: HSDL_THREADS if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
std::size_t hardware_threads();

/// Current effective thread count (always >= 1).
std::size_t num_threads();

/// Overrides the thread count; 0 restores the HSDL_THREADS/hardware
/// default. Takes effect on the next parallel_for.
void set_num_threads(std::size_t n);

/// True while executing inside a parallel_for body on any thread of the
/// pool (including the calling thread). Nested parallel_for calls run
/// inline serially.
bool in_parallel_region();

/// Runs body(chunk_begin, chunk_end) over disjoint chunks covering
/// [begin, end). `grain` is the maximum chunk length (0 picks an
/// automatic grain of ~4 chunks per thread). Chunk boundaries depend only
/// on (begin, end, grain), never on the thread count.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// 2-D tiled variant: body(row_begin, row_end, col_begin, col_end) over
/// disjoint row_grain x col_grain tiles covering [0, rows) x [0, cols).
void parallel_for_2d(
    std::size_t rows, std::size_t cols, std::size_t row_grain,
    std::size_t col_grain,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& body);

/// Fixed-size pool for long-lived tasks (server sessions, background
/// work). This deliberately does NOT share threads with the parallel_for
/// pool above: that pool is fork-join and serializes top-level regions,
/// so parking a long-lived task on it would starve every parallel_for in
/// the process. Tasks submitted here may themselves call parallel_for.
///
/// shutdown(drain=true) stops intake, runs every queued task to
/// completion and joins the workers; shutdown(false) discards tasks that
/// have not started. The destructor drains.
class TaskPool {
 public:
  explicit TaskPool(std::size_t threads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Queues a task; throws CheckError after shutdown. Tasks must not
  /// throw — an escaping exception terminates the process (same
  /// contract as std::thread), so wrap fallible work in its own try.
  void submit(std::function<void()> task);

  void shutdown(bool drain = true);

  std::size_t size() const { return workers_.size(); }
  /// Tasks queued but not yet started.
  std::size_t queued() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  bool discard_ = false;
};

}  // namespace hsdl

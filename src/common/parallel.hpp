// Shared parallel-execution substrate: a lazily initialized global thread
// pool with chunked parallel-for primitives.
//
// Design rules (every caller in this library relies on them):
//   * Determinism: parallel_for partitions an index range into disjoint
//     chunks; callers only ever write disjoint outputs per chunk, so the
//     result is bitwise identical to serial execution for any thread
//     count. Never parallelize over a reduction dimension — reduce
//     partials in a fixed order on the calling thread instead.
//   * Reentrancy: a parallel_for issued from inside a parallel region
//     (nested parallelism) executes inline on the calling thread, so
//     composed parallel code (e.g. gemm inside a per-sample conv loop)
//     cannot deadlock or oversubscribe.
//   * Exceptions thrown by the body are captured and rethrown on the
//     calling thread after all workers finish the region.
//
// The worker count defaults to std::thread::hardware_concurrency(), is
// overridable process-wide by the HSDL_THREADS environment variable
// (checked once, at first use), and at runtime by set_num_threads().
#pragma once

#include <cstddef>
#include <functional>

namespace hsdl {

/// Default thread count: HSDL_THREADS if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
std::size_t hardware_threads();

/// Current effective thread count (always >= 1).
std::size_t num_threads();

/// Overrides the thread count; 0 restores the HSDL_THREADS/hardware
/// default. Takes effect on the next parallel_for.
void set_num_threads(std::size_t n);

/// True while executing inside a parallel_for body on any thread of the
/// pool (including the calling thread). Nested parallel_for calls run
/// inline serially.
bool in_parallel_region();

/// Runs body(chunk_begin, chunk_end) over disjoint chunks covering
/// [begin, end). `grain` is the maximum chunk length (0 picks an
/// automatic grain of ~4 chunks per thread). Chunk boundaries depend only
/// on (begin, end, grain), never on the thread count.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// 2-D tiled variant: body(row_begin, row_end, col_begin, col_end) over
/// disjoint row_grain x col_grain tiles covering [0, rows) x [0, cols).
void parallel_for_2d(
    std::size_t rows, std::size_t cols, std::size_t row_grain,
    std::size_t col_grain,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)>& body);

}  // namespace hsdl

#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace hsdl {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HSDL_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::index(std::size_t n) {
  HSDL_CHECK(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng::State Rng::state() const {
  return State{s_, has_cached_normal_, cached_normal_};
}

void Rng::set_state(const State& state) {
  s_ = state.s;
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

Rng Rng::fork() {
  Rng child(0);
  // Child state derived from fresh draws so the parent stream advances and
  // the child stream is decorrelated.
  for (auto& word : child.s_) {
    std::uint64_t sm = (*this)();
    word = splitmix64(sm);
  }
  return child;
}

}  // namespace hsdl

#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace hsdl::json {
namespace {

constexpr int kMaxDepth = 64;

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void check(bool ok, const char* what) const {
    HSDL_CHECK_MSG(ok, "JSON parse error at byte " << pos_ << ": " << what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c, const char* what) { check(next() == c, what); }

  void expect_literal(std::string_view lit) {
    check(text_.substr(pos_).substr(0, lit.size()) == lit,
          "invalid literal");
    pos_ += lit.size();
  }

  Value parse_value(int depth) {
    check(depth < kMaxDepth, "nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value(parse_string());
      case 't':
        expect_literal("true");
        return Value(true);
      case 'f':
        expect_literal("false");
        return Value(false);
      case 'n':
        expect_literal("null");
        return Value();
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{', "expected '{'");
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':', "expected ':' after object key");
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') return obj;
      check(c == ',', "expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[', "expected '['");
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') return arr;
      check(c == ',', "expected ',' or ']' in array");
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        check(false, "invalid \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"', "expected '\"'");
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      check(static_cast<unsigned char>(c) >= 0x20,
            "unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            expect('\\', "expected low surrogate");
            expect('u', "expected low surrogate");
            const std::uint32_t lo = parse_hex4();
            check(lo >= 0xDC00 && lo <= 0xDFFF, "invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else {
            check(!(cp >= 0xDC00 && cp <= 0xDFFF), "stray low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          check(false, "invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
          "invalid number");
    const bool leading_zero = text_[pos_] == '0';
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    check(!leading_zero || pos_ == start + (text_[start] == '-' ? 2u : 1u),
          "leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "digit required after decimal point");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      check(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "digit required in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_to(const Value& v, std::string& out);

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  // Exact integers (the common case for counters and counts) print
  // without a fraction; everything else round-trips through %.17g.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

void dump_to(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      dump_number(v.as_number(), out);
      break;
    case Value::Kind::kString:
      out += escape(v.as_string());
      break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& item : v.items()) {
        if (!first) out += ',';
        first = false;
        dump_to(item, out);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, val] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += escape(key);
        out += ':';
        dump_to(val, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

bool Value::as_bool() const {
  HSDL_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double Value::as_number() const {
  HSDL_CHECK(kind_ == Kind::kNumber);
  return num_;
}

const std::string& Value::as_string() const {
  HSDL_CHECK(kind_ == Kind::kString);
  return str_;
}

const std::vector<Value>& Value::items() const {
  HSDL_CHECK(kind_ == Kind::kArray);
  return arr_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  HSDL_CHECK(kind_ == Kind::kObject);
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Value::push_back(Value v) {
  HSDL_CHECK(kind_ == Kind::kArray);
  arr_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  HSDL_CHECK(kind_ == Kind::kObject);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  return 0;
}

std::string Value::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace hsdl::json

#include "common/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hsdl {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace hsdl

// Minimal leveled logging to stderr.
//
// Benchmark harnesses print their tables on stdout; diagnostic chatter goes
// through this logger so table output stays machine-parsable.
//
// Thread safety: every line is formatted once and emitted atomically under
// a global mutex, so concurrent writers never interleave partial lines.
// Each emitted line carries the level, a monotonic timestamp (seconds
// since the first log call) and a small per-thread id:
//
//   [WARN      1.042617 t03] watchdog: non-finite loss at iter 712
//
// The minimum level defaults to kInfo, is overridable by the
// HSDL_LOG_LEVEL environment variable (debug/info/warn/error, read once
// at first use — mirroring how HSDL_THREADS configures the thread pool),
// and at runtime by set_log_level().
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hsdl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"warning"/"error" (case-insensitive);
/// nullopt on anything else. Exposed for the HSDL_LOG_LEVEL tests.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Receives each fully formatted line (no trailing newline) after level
/// filtering. Installing an empty function restores the stderr writer.
/// Sink calls are serialized by the logging mutex.
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void set_log_sink(LogSink sink);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log line: LOG(kInfo) << "trained " << n << " steps";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace hsdl

#define HSDL_LOG(level) ::hsdl::LogLine(::hsdl::LogLevel::level)

// Minimal leveled logging to stderr.
//
// Benchmark harnesses print their tables on stdout; diagnostic chatter goes
// through this logger so table output stays machine-parsable.
#pragma once

#include <sstream>
#include <string>

namespace hsdl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log line: LOG(kInfo) << "trained " << n << " steps";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace hsdl

#define HSDL_LOG(level) ::hsdl::LogLine(::hsdl::LogLevel::level)

// Concentric circle sampling (CCS) feature — reference [7], used by the
// ICCAD'16 [5] baseline detector.
//
// The mask is sampled along concentric circles around the clip centre;
// circle radii grow linearly to the clip half-side. The feature
// concatenates per-circle samples into one 1-D vector (again, flattened —
// the representation the paper's feature tensor improves upon).
#pragma once

#include <cstddef>
#include <vector>

#include "layout/clip.hpp"
#include "layout/raster.hpp"

namespace hsdl::features {

struct CcsConfig {
  std::size_t circles = 24;             ///< number of radii
  std::size_t samples_per_circle = 32;  ///< angular samples on each circle
  double nm_per_px = 4.0;               ///< raster pitch when given a Clip
};

/// CCS feature of a raster; length = circles * samples_per_circle.
/// Samples outside the raster read as 0 (empty field).
std::vector<float> ccs_feature(const layout::MaskImage& raster,
                               const CcsConfig& config = {});

/// Rasterizes then extracts.
std::vector<float> ccs_feature(const layout::Clip& clip,
                               const CcsConfig& config = {});

}  // namespace hsdl::features

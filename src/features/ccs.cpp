#include "features/ccs.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace hsdl::features {

std::vector<float> ccs_feature(const layout::MaskImage& raster,
                               const CcsConfig& config) {
  HSDL_CHECK(config.circles > 0 && config.samples_per_circle > 0);
  const double cx = static_cast<double>(raster.width()) / 2.0;
  const double cy = static_cast<double>(raster.height()) / 2.0;
  const double max_r = std::min(cx, cy) - 1.0;
  HSDL_CHECK(max_r > 0.0);

  std::vector<float> out;
  out.reserve(config.circles * config.samples_per_circle);
  for (std::size_t ci = 0; ci < config.circles; ++ci) {
    // Radii from near-centre to the inscribed circle.
    const double r = max_r * (static_cast<double>(ci) + 1.0) /
                     static_cast<double>(config.circles);
    for (std::size_t si = 0; si < config.samples_per_circle; ++si) {
      const double theta = 2.0 * std::numbers::pi *
                           static_cast<double>(si) /
                           static_cast<double>(config.samples_per_circle);
      const auto x = static_cast<long long>(
          std::llround(cx + r * std::cos(theta)));
      const auto y = static_cast<long long>(
          std::llround(cy + r * std::sin(theta)));
      // Average a 3x3 neighbourhood: point samples of a binary mask are
      // brittle under sub-pixel pattern shifts.
      float acc = 0.0f;
      for (long long dy = -1; dy <= 1; ++dy) {
        for (long long dx = -1; dx <= 1; ++dx) {
          const long long sx = x + dx, sy = y + dy;
          if (sx >= 0 && sy >= 0 &&
              sx < static_cast<long long>(raster.width()) &&
              sy < static_cast<long long>(raster.height()))
            acc += raster.at(static_cast<std::size_t>(sx),
                             static_cast<std::size_t>(sy));
        }
      }
      out.push_back(acc / 9.0f);
    }
  }
  return out;
}

std::vector<float> ccs_feature(const layout::Clip& clip,
                               const CcsConfig& config) {
  return ccs_feature(layout::rasterize(clip, config.nm_per_px), config);
}

}  // namespace hsdl::features

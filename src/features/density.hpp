// Local density feature (used by the SPIE'15 [4] baseline detector).
//
// The clip raster is divided into grid_n x grid_n tiles; the feature is the
// flattened vector of tile pattern densities. This is exactly the kind of
// 1-D flattening whose spatial-information loss the paper argues against.
#pragma once

#include <cstddef>
#include <vector>

#include "layout/clip.hpp"
#include "layout/raster.hpp"

namespace hsdl::features {

struct DensityConfig {
  std::size_t grid_n = 20;   ///< tiles per side (60 nm tiles at 1200 nm clips)
  double nm_per_px = 4.0;    ///< raster pitch used when given a Clip
};

/// Tile densities of a raster, row-major flattened, each in [0, 1].
/// The raster side must be divisible by grid_n.
std::vector<float> density_feature(const layout::MaskImage& raster,
                                   std::size_t grid_n);

/// Rasterizes then extracts.
std::vector<float> density_feature(const layout::Clip& clip,
                                   const DensityConfig& config = {});

}  // namespace hsdl::features

#include "features/density.hpp"

#include "common/check.hpp"

namespace hsdl::features {

std::vector<float> density_feature(const layout::MaskImage& raster,
                                   std::size_t grid_n) {
  HSDL_CHECK(grid_n > 0);
  HSDL_CHECK_MSG(raster.width() % grid_n == 0 &&
                     raster.height() % grid_n == 0,
                 "raster " << raster.width() << "x" << raster.height()
                           << " not divisible into " << grid_n << " tiles");
  const std::size_t tw = raster.width() / grid_n;
  const std::size_t th = raster.height() / grid_n;
  std::vector<float> out(grid_n * grid_n, 0.0f);
  for (std::size_t ty = 0; ty < grid_n; ++ty) {
    for (std::size_t tx = 0; tx < grid_n; ++tx) {
      double sum = 0.0;
      for (std::size_t y = 0; y < th; ++y) {
        const float* row = raster.row(ty * th + y) + tx * tw;
        for (std::size_t x = 0; x < tw; ++x) sum += row[x];
      }
      out[ty * grid_n + tx] =
          static_cast<float>(sum / static_cast<double>(tw * th));
    }
  }
  return out;
}

std::vector<float> density_feature(const layout::Clip& clip,
                                   const DensityConfig& config) {
  return density_feature(layout::rasterize(clip, config.nm_per_px),
                         config.grid_n);
}

}  // namespace hsdl::features
